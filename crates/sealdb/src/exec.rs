//! The query executor: a straightforward tuple-at-a-time interpreter
//! with nested-loop joins, grouping, correlated subqueries and views —
//! everything the paper's invariant and trimming queries need.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::*;
use crate::catalog::Catalog;
use crate::plan;
use crate::value::Value;
use crate::{DbError, Result};

/// Tables scans answered by the equality-index fast path vs. full scans.
fn index_counters() -> &'static (libseal_telemetry::Counter, libseal_telemetry::Counter) {
    static C: std::sync::OnceLock<(libseal_telemetry::Counter, libseal_telemetry::Counter)> =
        std::sync::OnceLock::new();
    C.get_or_init(|| {
        (
            libseal_telemetry::counter("sealdb_index_hits_total"),
            libseal_telemetry::counter("sealdb_index_misses_total"),
        )
    })
}

/// Metadata for one column of an intermediate or final row set.
#[derive(Clone, Debug)]
pub struct ColMeta {
    /// Source qualifier (table alias) if any.
    pub table: Option<String>,
    /// Column name.
    pub name: String,
}

/// A materialised row set.
#[derive(Clone, Debug, Default)]
pub struct Rows {
    /// Column metadata.
    pub cols: Vec<ColMeta>,
    /// Row data.
    pub data: Vec<Vec<Value>>,
}

/// An evaluation scope: the current row, plus outer scopes for
/// correlated subqueries.
pub struct Env<'a> {
    cols: &'a [ColMeta],
    row: &'a [Value],
    /// Optional second segment of the same scope, searched after
    /// `cols`: lets joins evaluate predicates over two borrowed sides
    /// without materialising the combined row first.
    tail: Option<(&'a [ColMeta], &'a [Value])>,
    parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    fn lookup(&self, table: Option<&str>, name: &str) -> Option<&Value> {
        if let Some(i) = plan::resolve_in(self.cols, table, name) {
            return self.row.get(i);
        }
        if let Some((cols, row)) = self.tail {
            if let Some(i) = plan::resolve_in(cols, table, name) {
                return row.get(i);
            }
        }
        self.parent.and_then(|p| p.lookup(table, name))
    }
}

/// Builds a single-scope environment over `cols`/`row` (used by DML).
pub fn env_for<'a>(cols: &'a [ColMeta], row: &'a [Value]) -> Env<'a> {
    Env {
        cols,
        row,
        tail: None,
        parent: None,
    }
}

/// A possibly-qualified column reference, as collected by
/// [`plan::free_refs`].
type FreeRefs = Rc<Vec<(Option<String>, String)>>;

/// Per-query execution context.
pub struct Ctx<'a> {
    /// The catalog to resolve tables and views against.
    pub catalog: &'a Catalog,
    /// Bound parameter values for `?` placeholders.
    pub params: &'a [Value],
    /// Use hash joins, index probes and subquery memoization. Off
    /// means the original tuple-at-a-time nested-loop execution —
    /// kept as the reference implementation for equivalence testing.
    planner: bool,
    /// Memoized subquery results keyed by (AST node identity, free
    /// variable bindings). Sound because the catalog is immutable for
    /// the lifetime of a `Ctx`.
    memo: RefCell<HashMap<(usize, String), Rc<Rows>>>,
    /// Cached free-variable lists per subquery AST node.
    free_refs: RefCell<HashMap<usize, FreeRefs>>,
}

impl<'a> Ctx<'a> {
    /// A context with the planner enabled (the default).
    pub fn new(catalog: &'a Catalog, params: &'a [Value]) -> Ctx<'a> {
        Self::with_planner(catalog, params, true)
    }

    /// A context with an explicit planner setting; `false` forces the
    /// naive nested-loop execution throughout.
    pub fn with_planner(catalog: &'a Catalog, params: &'a [Value], planner: bool) -> Ctx<'a> {
        Ctx {
            catalog,
            params,
            planner,
            memo: RefCell::new(HashMap::new()),
            free_refs: RefCell::new(HashMap::new()),
        }
    }
}

/// Executes a subquery, memoizing its result on the values of its
/// free variables so correlated subqueries re-run once per distinct
/// binding instead of once per outer row.
fn exec_subquery(ctx: &Ctx<'_>, query: &Select, env: &Env<'_>) -> Result<Rc<Rows>> {
    if !ctx.planner {
        return Ok(Rc::new(exec_select(ctx, query, Some(env))?));
    }
    let id = query as *const Select as usize;
    let refs = {
        let cached = ctx.free_refs.borrow().get(&id).cloned();
        match cached {
            Some(r) => r,
            None => {
                let r = Rc::new(plan::free_refs(query, ctx.catalog));
                ctx.free_refs.borrow_mut().insert(id, Rc::clone(&r));
                r
            }
        }
    };
    let mut key = String::new();
    for (t, n) in refs.iter() {
        match env.lookup(t.as_deref(), n) {
            Some(v) => plan::memo_key_part(&mut key, v),
            None => key.push('?'),
        }
        key.push('\x1f');
    }
    if let Some(hit) = ctx.memo.borrow().get(&(id, key.clone())) {
        return Ok(Rc::clone(hit));
    }
    let rows = Rc::new(exec_select(ctx, query, Some(env))?);
    ctx.memo.borrow_mut().insert((id, key), Rc::clone(&rows));
    Ok(rows)
}

/// Executes a SELECT and materialises its result.
pub fn exec_select(ctx: &Ctx<'_>, sel: &Select, outer: Option<&Env<'_>>) -> Result<Rows> {
    // 1. FROM: build the source row set. For a single-table scan with
    // an indexed equality filter, clone only the matching bucket
    // instead of the whole table (the full WHERE still runs over the
    // candidates below, so this is purely a pre-filter).
    let source = match &sel.from {
        Some(from) => match try_index_scan(ctx, from, sel.filter.as_ref(), outer)? {
            Some(rows) => {
                index_counters().0.inc();
                rows
            }
            None => {
                index_counters().1.inc();
                build_from(ctx, from, outer)?
            }
        },
        None => Rows {
            cols: Vec::new(),
            data: vec![Vec::new()],
        },
    };

    // 2. WHERE.
    let mut filtered: Vec<&Vec<Value>> = Vec::new();
    for row in &source.data {
        let keep = match &sel.filter {
            None => true,
            Some(f) => {
                let env = Env {
                    cols: &source.cols,
                    row,
                    tail: None,
                    parent: outer,
                };
                eval(ctx, f, &env, None)?.to_bool() == Some(true)
            }
        };
        if keep {
            filtered.push(row);
        }
    }

    // 3. Grouping decision.
    let has_aggregates = sel
        .projections
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || sel.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || sel.order_by.iter().any(|o| o.expr.contains_aggregate());
    let grouped = !sel.group_by.is_empty() || has_aggregates;

    // Output column names.
    let out_cols = projection_columns(&sel.projections, &source.cols)?;

    // Build (values, sort_keys) pairs.
    let mut results: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();

    if grouped {
        // Bucket rows by GROUP BY keys (single group if none).
        let mut groups: Vec<(String, Vec<&Vec<Value>>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for row in &filtered {
            let env = Env {
                cols: &source.cols,
                row,
                tail: None,
                parent: outer,
            };
            let mut key = String::new();
            for g in &sel.group_by {
                let v = eval(ctx, g, &env, None)?;
                key.push_str(&v.group_key());
                key.push('\x1f');
            }
            match index.get(&key) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        if groups.is_empty() && sel.group_by.is_empty() {
            // Aggregates over an empty set still produce one row.
            groups.push((String::new(), Vec::new()));
        }
        let null_row: Vec<Value> = vec![Value::Null; source.cols.len()];
        for (_, group_rows) in &groups {
            // Aggregates over an empty group still evaluate bare
            // columns; give them an all-NULL row, as SQLite does.
            let first_row: &[Value] = group_rows
                .first()
                .map(|r| r.as_slice())
                .unwrap_or(&null_row);
            let env = Env {
                cols: &source.cols,
                row: first_row,
                tail: None,
                parent: outer,
            };
            let agg = AggCtx {
                cols: &source.cols,
                rows: group_rows,
                outer,
            };
            if let Some(h) = &sel.having {
                if eval(ctx, h, &env, Some(&agg))?.to_bool() != Some(true) {
                    continue;
                }
            }
            let values = project(ctx, &sel.projections, &env, Some(&agg), &source.cols)?;
            let keys = order_keys(ctx, sel, &env, Some(&agg), &values, &out_cols)?;
            results.push((values, keys));
        }
    } else {
        for row in &filtered {
            let env = Env {
                cols: &source.cols,
                row,
                tail: None,
                parent: outer,
            };
            let values = project(ctx, &sel.projections, &env, None, &source.cols)?;
            let keys = order_keys(ctx, sel, &env, None, &values, &out_cols)?;
            results.push((values, keys));
        }
        if filtered.is_empty() {
            // Surface column-resolution errors even for empty results
            // (SQLite reports them at prepare time): evaluate the
            // projections once against an all-NULL row and discard.
            let null_row: Vec<Value> = vec![Value::Null; source.cols.len()];
            let env = Env {
                cols: &source.cols,
                row: &null_row,
                tail: None,
                parent: outer,
            };
            let _ = project(ctx, &sel.projections, &env, None, &source.cols)?;
        }
    }

    // 4. DISTINCT.
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        results.retain(|(vals, _)| {
            let key: String = vals.iter().map(|v| v.group_key() + "\x1f").collect();
            seen.insert(key)
        });
    }

    // 5. ORDER BY.
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|o| o.desc).collect();
        results.sort_by(|a, b| {
            for (i, desc) in descs.iter().enumerate() {
                let va = &a.1[i];
                let vb = &b.1[i];
                let ord = va.total_cmp(vb);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // 6. OFFSET / LIMIT.
    let offset = match &sel.offset {
        Some(e) => eval_const(ctx, e, outer)?.as_f64().unwrap_or(0.0).max(0.0) as usize,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => {
            let v = eval_const(ctx, e, outer)?;
            match v.as_f64() {
                Some(f) if f >= 0.0 => Some(f as usize),
                _ => None,
            }
        }
        None => None,
    };
    let mut data: Vec<Vec<Value>> = results.into_iter().map(|(v, _)| v).collect();
    if offset > 0 {
        data = data.split_off(offset.min(data.len()));
    }
    if let Some(l) = limit {
        data.truncate(l);
    }

    Ok(Rows {
        cols: out_cols,
        data,
    })
}

fn eval_const(ctx: &Ctx<'_>, e: &Expr, outer: Option<&Env<'_>>) -> Result<Value> {
    let empty_cols: [ColMeta; 0] = [];
    let empty_row: [Value; 0] = [];
    let env = Env {
        cols: &empty_cols,
        row: &empty_row,
        tail: None,
        parent: outer,
    };
    eval(ctx, e, &env, None)
}

/// Computes the ORDER BY sort keys for one output row.
fn order_keys(
    ctx: &Ctx<'_>,
    sel: &Select,
    env: &Env<'_>,
    agg: Option<&AggCtx<'_>>,
    out_values: &[Value],
    out_cols: &[ColMeta],
) -> Result<Vec<Value>> {
    let mut keys = Vec::with_capacity(sel.order_by.len());
    for term in &sel.order_by {
        // Positional reference (`ORDER BY 2`).
        if let Expr::Literal(Value::Integer(n)) = &term.expr {
            let idx = *n as usize;
            if idx >= 1 && idx <= out_values.len() {
                keys.push(out_values[idx - 1].clone());
                continue;
            }
        }
        // Output alias reference.
        if let Expr::Column { table: None, name } = &term.expr {
            if let Some(i) = out_cols
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
            {
                // Prefer the source column when one exists with the
                // same name; otherwise use the output value.
                if env.lookup(None, name).is_none() {
                    keys.push(out_values[i].clone());
                    continue;
                }
            }
        }
        keys.push(eval(ctx, &term.expr, env, agg)?);
    }
    Ok(keys)
}

/// Derives the output column metadata of a projection list.
fn projection_columns(items: &[SelectItem], source: &[ColMeta]) -> Result<Vec<ColMeta>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Star => out.extend(source.iter().cloned()),
            SelectItem::QualifiedStar(t) => {
                let before = out.len();
                out.extend(
                    source
                        .iter()
                        .filter(|c| {
                            c.table
                                .as_deref()
                                .is_some_and(|ct| ct.eq_ignore_ascii_case(t))
                        })
                        .cloned(),
                );
                if out.len() == before {
                    return Err(DbError::schema(format!("no such table: {t}")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.display_name());
                out.push(ColMeta { table: None, name });
            }
        }
    }
    Ok(out)
}

/// Evaluates the projection list for one row/group.
fn project(
    ctx: &Ctx<'_>,
    items: &[SelectItem],
    env: &Env<'_>,
    agg: Option<&AggCtx<'_>>,
    source: &[ColMeta],
) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Star => out.extend(env.row.iter().cloned()),
            SelectItem::QualifiedStar(t) => {
                for (i, c) in source.iter().enumerate() {
                    if c.table
                        .as_deref()
                        .is_some_and(|ct| ct.eq_ignore_ascii_case(t))
                    {
                        out.push(env.row[i].clone());
                    }
                }
            }
            SelectItem::Expr { expr, .. } => out.push(eval(ctx, expr, env, agg)?),
        }
    }
    Ok(out)
}

/// Index-scan fast path: when the FROM is a single stored table and
/// the WHERE has a top-level `col = expr` conjunct over an indexed
/// column whose right side depends only on outer scopes / parameters,
/// returns just the matching rows (in scan order). The caller still
/// evaluates the full WHERE over them, so any conjunct this analysis
/// ignores — and the probed one — are re-checked row by row.
fn try_index_scan(
    ctx: &Ctx<'_>,
    from: &FromClause,
    filter: Option<&Expr>,
    outer: Option<&Env<'_>>,
) -> Result<Option<Rows>> {
    if !ctx.planner {
        return Ok(None);
    }
    let Some(filter) = filter else {
        return Ok(None);
    };
    let Some((name, alias)) = plan::single_base_table(from) else {
        return Ok(None);
    };
    let Some(t) = ctx.catalog.table(name) else {
        return Ok(None);
    };
    let label = alias.unwrap_or(name);
    let cols: Vec<ColMeta> = t
        .columns
        .iter()
        .map(|c| ColMeta {
            table: Some(label.to_string()),
            name: c.name.clone(),
        })
        .collect();
    let mut best: Option<&[usize]> = None;
    for conj in plan::split_and(filter) {
        let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = conj
        else {
            continue;
        };
        for (col_side, key_side) in [(&left, &right), (&right, &left)] {
            let Expr::Column { table, name } = col_side.as_ref() else {
                continue;
            };
            let Some(ci) = plan::resolve_in(&cols, table.as_deref(), name) else {
                continue;
            };
            let Some(ix) = t.index_on(ci) else {
                continue;
            };
            if plan::has_subquery(key_side) || plan::refs_scope(key_side, &cols) {
                continue;
            }
            let key = eval_const(ctx, key_side, outer)?;
            if key.is_null() {
                // `col = NULL` matches no row.
                return Ok(Some(Rows {
                    cols,
                    data: Vec::new(),
                }));
            }
            let Some(bucket) = ix.probe(&key) else {
                continue;
            };
            if best.is_none_or(|b| bucket.len() < b.len()) {
                best = Some(bucket);
            }
        }
    }
    let Some(bucket) = best else {
        return Ok(None);
    };
    Ok(Some(Rows {
        cols,
        data: bucket.iter().map(|&i| t.rows[i].clone()).collect(),
    }))
}

/// Builds the FROM row set, applying joins left to right.
fn build_from(ctx: &Ctx<'_>, from: &FromClause, outer: Option<&Env<'_>>) -> Result<Rows> {
    let mut acc = resolve_table_ref(ctx, &from.first, outer)?;
    for join in &from.joins {
        let right = resolve_table_ref(ctx, &join.table, outer)?;
        acc = match join.kind {
            JoinKind::Natural => natural_join(ctx, &acc, &right)?,
            JoinKind::Inner => inner_join(ctx, &acc, &right, join.on.as_ref(), outer, false)?,
            JoinKind::Left => inner_join(ctx, &acc, &right, join.on.as_ref(), outer, true)?,
        };
    }
    Ok(acc)
}

fn resolve_table_ref(ctx: &Ctx<'_>, tref: &TableRef, outer: Option<&Env<'_>>) -> Result<Rows> {
    match tref {
        TableRef::Named { name, alias } => {
            let label = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(t) = ctx.catalog.table(name) {
                Ok(Rows {
                    cols: t
                        .columns
                        .iter()
                        .map(|c| ColMeta {
                            table: Some(label.clone()),
                            name: c.name.clone(),
                        })
                        .collect(),
                    data: t.rows.clone(),
                })
            } else if let Some(q) = ctx.catalog.view(name) {
                let rows = exec_select(ctx, q, outer)?;
                Ok(Rows {
                    cols: rows
                        .cols
                        .into_iter()
                        .map(|c| ColMeta {
                            table: Some(label.clone()),
                            name: c.name,
                        })
                        .collect(),
                    data: rows.data,
                })
            } else {
                Err(DbError::schema(format!("no such table: {name}")))
            }
        }
        TableRef::Subquery { query, alias } => {
            let rows = exec_select(ctx, query, outer)?;
            let label = alias.clone();
            Ok(Rows {
                cols: rows
                    .cols
                    .into_iter()
                    .map(|c| ColMeta {
                        table: label.clone().or(c.table),
                        name: c.name,
                    })
                    .collect(),
                data: rows.data,
            })
        }
    }
}

fn inner_join(
    ctx: &Ctx<'_>,
    left: &Rows,
    right: &Rows,
    on: Option<&Expr>,
    outer: Option<&Env<'_>>,
    left_outer: bool,
) -> Result<Rows> {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());

    // Hash path: pull equality conjuncts out of the ON predicate and
    // build/probe on them; remaining conjuncts are evaluated per
    // candidate pair. Requires NaN-free key columns (group_key and
    // SQL equality disagree on NaN) — emission order matches the
    // nested loop exactly: left-major, right rows in scan order.
    if ctx.planner {
        if let Some(cond) = on {
            let mut keys: Vec<(usize, usize)> = Vec::new();
            let mut residual: Vec<&Expr> = Vec::new();
            for conj in plan::split_and(cond) {
                match plan::equi_key(conj, &left.cols, &right.cols) {
                    Some(k) => keys.push(k),
                    None => residual.push(conj),
                }
            }
            if !keys.is_empty()
                && !plan::has_nan(&left.data, keys.iter().map(|k| k.0))
                && !plan::has_nan(&right.data, keys.iter().map(|k| k.1))
            {
                let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
                'build: for (ri, r) in right.data.iter().enumerate() {
                    let mut key = String::new();
                    for &(_, rc) in &keys {
                        if r[rc].is_null() {
                            // NULL never compares equal: unreachable
                            // by any probe.
                            continue 'build;
                        }
                        plan::push_key_part(&mut key, &r[rc]);
                    }
                    buckets.entry(key).or_default().push(ri);
                }
                let mut data = Vec::new();
                for l in &left.data {
                    let mut matched = false;
                    let mut key = String::new();
                    let mut null_key = false;
                    for &(lc, _) in &keys {
                        if l[lc].is_null() {
                            null_key = true;
                            break;
                        }
                        plan::push_key_part(&mut key, &l[lc]);
                    }
                    if !null_key {
                        if let Some(cands) = buckets.get(&key) {
                            for &ri in cands {
                                let r = &right.data[ri];
                                let mut keep = true;
                                for conj in &residual {
                                    let env = Env {
                                        cols: &left.cols,
                                        row: l,
                                        tail: Some((&right.cols, r)),
                                        parent: outer,
                                    };
                                    if eval(ctx, conj, &env, None)?.to_bool() != Some(true) {
                                        keep = false;
                                        break;
                                    }
                                }
                                if keep {
                                    matched = true;
                                    let mut combined = l.clone();
                                    combined.extend(r.iter().cloned());
                                    data.push(combined);
                                }
                            }
                        }
                    }
                    if left_outer && !matched {
                        let mut combined = l.clone();
                        combined
                            .extend(std::iter::repeat_with(|| Value::Null).take(right.cols.len()));
                        data.push(combined);
                    }
                }
                return Ok(Rows { cols, data });
            }
        }
    }

    // Nested-loop fallback: evaluate ON against the borrowed sides
    // and only materialise the combined row on a match.
    let mut data = Vec::new();
    for l in &left.data {
        let mut matched = false;
        for r in &right.data {
            let keep = match on {
                None => true,
                Some(cond) => {
                    let env = Env {
                        cols: &left.cols,
                        row: l,
                        tail: Some((&right.cols, r)),
                        parent: outer,
                    };
                    eval(ctx, cond, &env, None)?.to_bool() == Some(true)
                }
            };
            if keep {
                matched = true;
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                data.push(combined);
            }
        }
        if left_outer && !matched {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_with(|| Value::Null).take(right.cols.len()));
            data.push(combined);
        }
    }
    Ok(Rows { cols, data })
}

fn natural_join(ctx: &Ctx<'_>, left: &Rows, right: &Rows) -> Result<Rows> {
    // Columns shared by name join the sides; they appear once in the
    // output (merged, unqualified).
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (li, lc) in left.cols.iter().enumerate() {
        if let Some(ri) = right
            .cols
            .iter()
            .position(|rc| rc.name.eq_ignore_ascii_case(&lc.name))
        {
            shared.push((li, ri));
        }
    }
    let right_keep: Vec<usize> = (0..right.cols.len())
        .filter(|ri| !shared.iter().any(|(_, r)| r == ri))
        .collect();

    let mut cols: Vec<ColMeta> = left
        .cols
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if shared.iter().any(|(l, _)| *l == i) {
                // Merged join column: reachable without qualifier.
                ColMeta {
                    table: None,
                    name: c.name.clone(),
                }
            } else {
                c.clone()
            }
        })
        .collect();
    cols.extend(right_keep.iter().map(|&ri| right.cols[ri].clone()));

    // Hash path over the shared columns; same NaN caveat as
    // `inner_join`. With no shared columns this is a cross join and
    // the nested loop below is already optimal.
    if ctx.planner
        && !shared.is_empty()
        && !plan::has_nan(&left.data, shared.iter().map(|s| s.0))
        && !plan::has_nan(&right.data, shared.iter().map(|s| s.1))
    {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        'build: for (ri, r) in right.data.iter().enumerate() {
            let mut key = String::new();
            for &(_, rc) in &shared {
                if r[rc].is_null() {
                    continue 'build;
                }
                plan::push_key_part(&mut key, &r[rc]);
            }
            buckets.entry(key).or_default().push(ri);
        }
        let mut data = Vec::new();
        'probe: for l in &left.data {
            let mut key = String::new();
            for &(lc, _) in &shared {
                if l[lc].is_null() {
                    continue 'probe;
                }
                plan::push_key_part(&mut key, &l[lc]);
            }
            if let Some(cands) = buckets.get(&key) {
                for &ri in cands {
                    let r = &right.data[ri];
                    let mut combined = l.clone();
                    combined.extend(right_keep.iter().map(|&rk| r[rk].clone()));
                    data.push(combined);
                }
            }
        }
        return Ok(Rows { cols, data });
    }

    let mut data = Vec::new();
    for l in &left.data {
        for r in &right.data {
            let all_match = shared
                .iter()
                .all(|(li, ri)| l[*li].sql_eq(&r[*ri]) == Some(true));
            if all_match {
                let mut combined = l.clone();
                combined.extend(right_keep.iter().map(|&ri| r[ri].clone()));
                data.push(combined);
            }
        }
    }
    Ok(Rows { cols, data })
}

/// Group context for aggregate evaluation.
pub struct AggCtx<'a> {
    cols: &'a [ColMeta],
    rows: &'a [&'a Vec<Value>],
    outer: Option<&'a Env<'a>>,
}

/// Evaluates `expr` in `env`; aggregates draw from `agg` when present.
pub fn eval(ctx: &Ctx<'_>, expr: &Expr, env: &Env<'_>, agg: Option<&AggCtx<'_>>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| DbError::exec(format!("missing bind parameter {}", i + 1))),
        Expr::Column { table, name } => {
            env.lookup(table.as_deref(), name).cloned().ok_or_else(|| {
                DbError::schema(match table {
                    Some(t) => format!("no such column: {t}.{name}"),
                    None => format!("no such column: {name}"),
                })
            })
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, env, agg)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Real(f) => Ok(Value::Real(-f)),
                    other => Ok(Value::Real(-other.as_f64().unwrap_or(0.0))),
                },
                UnOp::Not => match v.to_bool() {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Integer(if b { 0 } else { 1 })),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(ctx, *op, left, right, env, agg),
        Expr::Function {
            name,
            args,
            star,
            distinct,
        } => eval_function(ctx, name, args, *star, *distinct, env, agg),
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, env, agg)?;
            let is_null = v.is_null();
            Ok(Value::Integer((is_null != *negated) as i64))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval(ctx, expr, env, agg)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(ctx, item, env, agg)?;
                match needle.sql_eq(&v) {
                    Some(true) => {
                        return Ok(Value::Integer(if *negated { 0 } else { 1 }));
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(if *negated { 1 } else { 0 }))
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let needle = eval(ctx, expr, env, agg)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let rows = exec_subquery(ctx, query, env)?;
            let mut saw_null = false;
            for row in &rows.data {
                let v = row.first().cloned().unwrap_or(Value::Null);
                match needle.sql_eq(&v) {
                    Some(true) => {
                        return Ok(Value::Integer(if *negated { 0 } else { 1 }));
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Integer(if *negated { 1 } else { 0 }))
            }
        }
        Expr::Exists { query, negated } => {
            let rows = exec_subquery(ctx, query, env)?;
            let exists = !rows.data.is_empty();
            Ok(Value::Integer((exists != *negated) as i64))
        }
        Expr::Subquery(query) => {
            let rows = exec_subquery(ctx, query, env)?;
            Ok(rows
                .data
                .first()
                .and_then(|r| r.first().cloned())
                .unwrap_or(Value::Null))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(ctx, expr, env, agg)?;
            let lo = eval(ctx, low, env, agg)?;
            let hi = eval(ctx, high, env, agg)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Integer((inside != *negated) as i64))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(ctx, expr, env, agg)?;
            let p = eval(ctx, pattern, env, agg)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(&p.to_string(), &v.to_string());
            Ok(Value::Integer((matched != *negated) as i64))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            match operand {
                Some(op) => {
                    let base = eval(ctx, op, env, agg)?;
                    for (when, then) in branches {
                        let w = eval(ctx, when, env, agg)?;
                        if base.sql_eq(&w) == Some(true) {
                            return eval(ctx, then, env, agg);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if eval(ctx, when, env, agg)?.to_bool() == Some(true) {
                            return eval(ctx, then, env, agg);
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => eval(ctx, e, env, agg),
                None => Ok(Value::Null),
            }
        }
    }
}

fn eval_binary(
    ctx: &Ctx<'_>,
    op: BinOp,
    left: &Expr,
    right: &Expr,
    env: &Env<'_>,
    agg: Option<&AggCtx<'_>>,
) -> Result<Value> {
    // AND/OR need lazy-ish three-valued logic.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(ctx, left, env, agg)?.to_bool();
        // Short-circuit where the result is already decided.
        match (op, l) {
            (BinOp::And, Some(false)) => return Ok(Value::Integer(0)),
            (BinOp::Or, Some(true)) => return Ok(Value::Integer(1)),
            _ => {}
        }
        let r = eval(ctx, right, env, agg)?.to_bool();
        let out = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => return Err(DbError::exec("non-logical operator on AND/OR path")),
        };
        return Ok(match out {
            Some(b) => Value::Integer(b as i64),
            None => Value::Null,
        });
    }

    let l = eval(ctx, left, env, agg)?;
    let r = eval(ctx, right, env, agg)?;
    match op {
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let cmp = l.sql_cmp(&r);
            Ok(match cmp {
                None => Value::Null,
                Some(ord) => {
                    let b = match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => {
                            return Err(DbError::exec("non-comparison operator on comparison path"))
                        }
                    };
                    Value::Integer(b as i64)
                }
            })
        }
        BinOp::Concat => {
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{l}{r}")))
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic when both sides are integers.
            if let (Value::Integer(a), Value::Integer(b)) = (&l, &r) {
                let (a, b) = (*a, *b);
                return Ok(match op {
                    BinOp::Add => a
                        .checked_add(b)
                        .map(Value::Integer)
                        .unwrap_or(Value::Real(a as f64 + b as f64)),
                    BinOp::Sub => a
                        .checked_sub(b)
                        .map(Value::Integer)
                        .unwrap_or(Value::Real(a as f64 - b as f64)),
                    BinOp::Mul => a
                        .checked_mul(b)
                        .map(Value::Integer)
                        .unwrap_or(Value::Real(a as f64 * b as f64)),
                    BinOp::Div => {
                        if b == 0 {
                            Value::Null
                        } else {
                            Value::Integer(a.wrapping_div(b))
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            Value::Null
                        } else {
                            Value::Integer(a.wrapping_rem(b))
                        }
                    }
                    _ => return Err(DbError::exec("non-arithmetic operator on arithmetic path")),
                });
            }
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Ok(Value::Null);
            };
            Ok(match op {
                BinOp::Add => Value::Real(a + b),
                BinOp::Sub => Value::Real(a - b),
                BinOp::Mul => Value::Real(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Real(a / b)
                    }
                }
                BinOp::Rem => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Real(a % b)
                    }
                }
                _ => return Err(DbError::exec("non-arithmetic operator on arithmetic path")),
            })
        }
        // Handled (with an early return) at the top of the function.
        BinOp::And | BinOp::Or => Err(DbError::exec("AND/OR fell through logical path")),
    }
}

const AGGREGATES: &[&str] = &["COUNT", "SUM", "TOTAL", "AVG", "MIN", "MAX", "GROUP_CONCAT"];

fn eval_function(
    ctx: &Ctx<'_>,
    name: &str,
    args: &[Expr],
    star: bool,
    distinct: bool,
    env: &Env<'_>,
    agg: Option<&AggCtx<'_>>,
) -> Result<Value> {
    if AGGREGATES.contains(&name) {
        let Some(agg) = agg else {
            return Err(DbError::exec(format!(
                "misuse of aggregate function {name}()"
            )));
        };
        return eval_aggregate(ctx, name, args, star, distinct, agg);
    }
    // Scalar functions.
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(ctx, a, env, agg)?);
    }
    match name {
        "ABS" => {
            let v = vals.first().cloned().unwrap_or(Value::Null);
            Ok(match v {
                Value::Null => Value::Null,
                Value::Integer(i) => Value::Integer(i.abs()),
                Value::Real(f) => Value::Real(f.abs()),
                other => other
                    .as_f64()
                    .map(|f| Value::Real(f.abs()))
                    .unwrap_or(Value::Null),
            })
        }
        "LENGTH" => Ok(match vals.first() {
            Some(Value::Text(s)) => Value::Integer(s.chars().count() as i64),
            Some(Value::Blob(b)) => Value::Integer(b.len() as i64),
            Some(Value::Null) | None => Value::Null,
            Some(v) => Value::Integer(v.to_string().len() as i64),
        }),
        "LOWER" => Ok(match vals.first() {
            Some(Value::Null) | None => Value::Null,
            Some(v) => Value::Text(v.to_string().to_lowercase()),
        }),
        "UPPER" => Ok(match vals.first() {
            Some(Value::Null) | None => Value::Null,
            Some(v) => Value::Text(v.to_string().to_uppercase()),
        }),
        "SUBSTR" | "SUBSTRING" => {
            let s = match vals.first() {
                Some(Value::Null) | None => return Ok(Value::Null),
                Some(v) => v.to_string(),
            };
            let chars: Vec<char> = s.chars().collect();
            let start = vals
                .get(1)
                .and_then(Value::as_f64)
                .map(|f| f as i64)
                .unwrap_or(1);
            let len = vals.get(2).and_then(Value::as_f64).map(|f| f as i64);
            // SQLite: 1-based; negative counts from the end.
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub((-start) as usize)
            } else {
                0
            };
            let out: String = match len {
                Some(l) if l >= 0 => chars.iter().skip(begin).take(l as usize).collect(),
                Some(_) => String::new(),
                None => chars.iter().skip(begin).collect(),
            };
            Ok(Value::Text(out))
        }
        "COALESCE" => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "IFNULL" => {
            let first = vals.first().cloned().unwrap_or(Value::Null);
            if first.is_null() {
                Ok(vals.get(1).cloned().unwrap_or(Value::Null))
            } else {
                Ok(first)
            }
        }
        "NULLIF" => {
            let a = vals.first().cloned().unwrap_or(Value::Null);
            let b = vals.get(1).cloned().unwrap_or(Value::Null);
            if a.sql_eq(&b) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        "TYPEOF" => Ok(Value::Text(
            match vals.first() {
                Some(Value::Null) | None => "null",
                Some(Value::Integer(_)) => "integer",
                Some(Value::Real(_)) => "real",
                Some(Value::Text(_)) => "text",
                Some(Value::Blob(_)) => "blob",
            }
            .to_string(),
        )),
        "HEX" => Ok(match vals.first() {
            Some(Value::Blob(b)) => Value::Text(b.iter().map(|x| format!("{x:02X}")).collect()),
            Some(Value::Null) | None => Value::Text(String::new()),
            Some(v) => Value::Text(v.to_string().bytes().map(|x| format!("{x:02X}")).collect()),
        }),
        _ => Err(DbError::exec(format!("no such function: {name}"))),
    }
}

fn eval_aggregate(
    ctx: &Ctx<'_>,
    name: &str,
    args: &[Expr],
    star: bool,
    distinct: bool,
    agg: &AggCtx<'_>,
) -> Result<Value> {
    if name == "COUNT" && star {
        return Ok(Value::Integer(agg.rows.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| DbError::exec(format!("{name}() requires an argument")))?;
    // Evaluate the argument for every row of the group.
    let mut vals = Vec::with_capacity(agg.rows.len());
    for row in agg.rows {
        let env = Env {
            cols: agg.cols,
            row,
            tail: None,
            parent: agg.outer,
        };
        vals.push(eval(ctx, arg, &env, None)?);
    }
    let mut non_null: Vec<Value> = vals.into_iter().filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = std::collections::HashSet::new();
        non_null.retain(|v| seen.insert(v.group_key()));
    }
    match name {
        "COUNT" => Ok(Value::Integer(non_null.len() as i64)),
        "SUM" | "TOTAL" => {
            if non_null.is_empty() {
                return Ok(if name == "SUM" {
                    Value::Null
                } else {
                    Value::Real(0.0)
                });
            }
            let all_int = non_null.iter().all(|v| matches!(v, Value::Integer(_)));
            if all_int && name == "SUM" {
                let mut acc = 0i64;
                for v in &non_null {
                    if let Value::Integer(i) = v {
                        acc = acc.wrapping_add(*i);
                    }
                }
                Ok(Value::Integer(acc))
            } else {
                let s: f64 = non_null.iter().filter_map(Value::as_f64).sum();
                Ok(Value::Real(s))
            }
        }
        "AVG" => {
            if non_null.is_empty() {
                Ok(Value::Null)
            } else {
                let s: f64 = non_null.iter().filter_map(Value::as_f64).sum();
                Ok(Value::Real(s / non_null.len() as f64))
            }
        }
        "MIN" => Ok(non_null
            .into_iter()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "MAX" => Ok(non_null
            .into_iter()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "GROUP_CONCAT" => {
            if non_null.is_empty() {
                return Ok(Value::Null);
            }
            let sep = ",".to_string();
            Ok(Value::Text(
                non_null
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(&sep),
            ))
        }
        _ => Err(DbError::exec(format!("no such aggregate: {name}"))),
    }
}

/// SQLite-style LIKE: case-insensitive ASCII, `%` any run, `_` one char.
///
/// Iterative greedy two-pointer algorithm: on a mismatch after a `%`,
/// re-anchor the `%` one text position further. O(|pattern|·|text|)
/// worst case — the naive recursive formulation is exponential on
/// patterns like `%a%a%a%b`.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Pattern position after the last `%`, and the text position that
    // run of `%`-matched characters currently resumes from.
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while ti < t.len() {
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi + 1);
            mark = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi].eq_ignore_ascii_case(&t[ti])) {
            pi += 1;
            ti += 1;
        } else if let Some(s) = star {
            mark += 1;
            ti = mark;
            pi = s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("a%", "abc"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(like_match("ABC", "abc"));
        assert!(!like_match("a_c", "abcd"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("a%%c", "abc"));
        assert!(like_match("_%_", "ab"));
        assert!(!like_match("_%_", "a"));
    }

    #[test]
    fn like_adversarial_completes_fast() {
        // The old recursive matcher was exponential on this shape;
        // the greedy matcher is O(|p|·|t|) and finishes instantly.
        let text = "a".repeat(20_000);
        assert!(!like_match("%a%a%a%a%a%b", &text));
        assert!(like_match("%a%a%a%a%a%", &text));
        assert!(!like_match("%a%a%a%a%a%b", &format!("{text}c")));
    }
}

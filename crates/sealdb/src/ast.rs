//! The SQL abstract syntax tree.

use crate::value::Value;

/// A full SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE [IF NOT EXISTS] name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Suppress the error when the table exists.
        if_not_exists: bool,
    },
    /// `CREATE VIEW name AS SELECT ...`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Select,
        /// Suppress the error when the view exists.
        if_not_exists: bool,
    },
    /// `CREATE INDEX [IF NOT EXISTS] name ON table (column)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// Suppress the error when the index exists.
        if_not_exists: bool,
    },
    /// `DROP INDEX [IF EXISTS] name`
    DropIndex {
        /// Index name.
        name: String,
        /// Suppress the error when missing.
        if_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the error when missing.
        if_exists: bool,
    },
    /// `DROP VIEW [IF EXISTS] name`
    DropView {
        /// View name.
        name: String,
        /// Suppress the error when missing.
        if_exists: bool,
    },
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row value expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM t [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `UPDATE t SET c = e, ... [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A `SELECT` query.
    Select(Select),
}

/// A column definition in CREATE TABLE.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type text (drives affinity), may be empty.
    pub decl_type: String,
    /// Whether declared `PRIMARY KEY`.
    pub primary_key: bool,
}

/// A SELECT query (possibly with set-returning FROM and grouping).
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Output expressions.
    pub projections: Vec<SelectItem>,
    /// FROM clause (None = scalar select like `SELECT 1`).
    pub from: Option<FromClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY terms.
    pub order_by: Vec<OrderTerm>,
    /// LIMIT count.
    pub limit: Option<Expr>,
    /// OFFSET count.
    pub offset: Option<Expr>,
}

/// One item of the projection list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `t.*`
    QualifiedStar(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// The FROM clause: a first source plus joins.
#[derive(Clone, Debug, PartialEq)]
pub struct FromClause {
    /// First table/subquery.
    pub first: TableRef,
    /// Subsequent joins, applied left to right.
    pub joins: Vec<Join>,
}

/// A join step.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// Join flavour.
    pub kind: JoinKind,
    /// Right-hand source.
    pub table: TableRef,
    /// `ON` predicate (None for NATURAL and CROSS joins).
    pub on: Option<Expr>,
}

/// Join flavours supported by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN ... ON`, or a comma (cross join when `on` absent).
    Inner,
    /// `LEFT [OUTER] JOIN ... ON`.
    Left,
    /// `NATURAL JOIN`: equality over shared column names, shared
    /// columns merged.
    Natural,
}

/// A table or subquery in FROM.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    /// A named table or view with an optional alias.
    Named {
        /// Table or view name.
        name: String,
        /// Alias (e.g. `advertisements a`).
        alias: Option<String>,
    },
    /// A parenthesised subquery with an alias.
    Subquery {
        /// The inner query.
        query: Box<Select>,
        /// Alias naming the derived table.
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name this source is referenced by in column qualifiers.
    pub fn effective_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
        }
    }
}

/// An ORDER BY term.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderTerm {
    /// Sort expression (or output-column reference / position).
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `||` string concatenation
    Concat,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `NOT`
    Not,
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// `?` parameter (0-based).
    Param(usize),
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier (`u` in `u.cid`).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (including aggregates).
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments; empty with `star=true` for `COUNT(*)`.
        args: Vec<Expr>,
        /// `COUNT(*)`-style star argument.
        star: bool,
        /// `COUNT(DISTINCT x)`.
        distinct: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List items.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (first output column used).
        query: Box<Select>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        query: Box<Select>,
        /// `NOT EXISTS`?
        negated: bool,
    },
    /// A scalar subquery `(SELECT ...)`.
    Subquery(Box<Select>),
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%` and `_` wildcards.
        pattern: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional operand (simple CASE).
        operand: Option<Box<Expr>>,
        /// WHEN/THEN pairs.
        branches: Vec<(Expr, Expr)>,
        /// ELSE expression.
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// Whether this expression (recursively) contains an aggregate
    /// function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                matches!(
                    name.as_str(),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "TOTAL" | "GROUP_CONCAT"
                ) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }

    /// A human-readable rendering used for derived column names.
    pub fn display_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Function {
                name, args, star, ..
            } => {
                if *star {
                    format!("{}(*)", name)
                } else if let Some(first) = args.first() {
                    format!("{}({})", name, first.display_name())
                } else {
                    format!("{}()", name)
                }
            }
            Expr::Literal(v) => v.to_string(),
            _ => "expr".to_string(),
        }
    }
}

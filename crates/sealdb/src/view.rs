//! Delta-maintained materialized views.
//!
//! A materialized view is a real catalog table (the *backing table*)
//! holding the result rows of a registered SELECT. Instead of
//! re-running the full query on every read, the database tracks which
//! *partitions* of the view may have changed — a partition is the set
//! of result rows sharing one value in a designated output column —
//! and re-evaluates only those partitions on
//! [`crate::Database::refresh_matviews`].
//!
//! Dirty tracking is driven by per-source-table rules declared in the
//! [`MatViewSpec`]:
//!
//! - an INSERT into a source table with a [`SourceRule::partition_col`]
//!   dirties the partition named by that column of the inserted row;
//! - an INSERT into a source table with a [`RescanRule`] additionally
//!   runs a lookup query bound to columns of the inserted row, and
//!   dirties every partition the lookup returns (for views whose rows
//!   can be *cleared* by a later insert, e.g. an untimed NOT EXISTS);
//! - a DELETE or UPDATE touching any source table marks the whole
//!   view dirty (full recompute on next refresh).
//!
//! Over-approximation is always safe: refreshing a partition is
//! idempotent (delete the partition's backing rows, re-run the delta
//! query, insert the fresh rows), so a spuriously dirtied partition
//! just costs one indexed re-evaluation.
//!
//! Durability: only the backing table *definition* is journaled (as
//! ordinary `CREATE TABLE IF NOT EXISTS` / `CREATE INDEX IF NOT
//! EXISTS` statements). Derived rows are never journaled and are not
//! dumped by [`crate::Database::compact`]; re-registering a view after
//! reopen marks it fully dirty, so the first refresh rebuilds it from
//! the recovered base tables.

use std::collections::BTreeSet;

use crate::value::Value;

/// A registered materialized view definition.
#[derive(Clone, Debug)]
pub struct MatViewSpec {
    /// Backing table name (conventionally `mv_<invariant>`).
    pub name: String,
    /// Full SELECT producing every view row (used for full rebuilds
    /// and to derive the backing table's columns).
    pub full_sql: String,
    /// SELECT producing the view rows of one partition; `?1` is bound
    /// to the partition value.
    pub delta_sql: String,
    /// Index of the output column holding the partition value.
    pub partition_col: usize,
    /// Dirty-tracking rules, one per source table feeding the view.
    pub sources: Vec<SourceRule>,
}

/// How writes to one source table dirty the view.
#[derive(Clone, Debug)]
pub struct SourceRule {
    /// Source (base) table name.
    pub table: String,
    /// Column of the *source* row whose value names the partition to
    /// dirty on INSERT. `None` means inserts into this table cannot
    /// add view rows (but a [`RescanRule`] may still clear some).
    pub partition_col: Option<String>,
    /// Optional lookup re-dirtying partitions whose existing view
    /// rows may be invalidated by the inserted row.
    pub rescan: Option<RescanRule>,
}

/// A lookup run after each INSERT into the source table: `sql` is
/// executed with the inserted row's `bind_cols` values bound to
/// `?1..?n`, and the first column of every returned row names a
/// partition to re-dirty.
#[derive(Clone, Debug)]
pub struct RescanRule {
    /// Partition lookup query.
    pub sql: String,
    /// Source-row columns bound, in order, to the query parameters.
    pub bind_cols: Vec<String>,
}

/// Total-order wrapper over [`Value`] so partitions can live in a
/// [`BTreeSet`]. Orders by type tag, then by value; `Real` uses IEEE
/// total ordering so NaN is admissible (it would poison a hash index,
/// but a dirty *set* must still deduplicate it).
#[derive(Clone, Debug)]
pub struct PartitionKey(pub Value);

impl PartitionKey {
    fn rank(&self) -> u8 {
        match self.0 {
            Value::Null => 0,
            Value::Integer(_) => 1,
            Value::Real(_) => 2,
            Value::Text(_) => 3,
            Value::Blob(_) => 4,
        }
    }
}

impl PartialEq for PartitionKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PartitionKey {}

impl PartialOrd for PartitionKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PartitionKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (&self.0, &other.0) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

/// Runtime state of one registered view.
#[derive(Debug)]
pub(crate) struct MatView {
    pub spec: MatViewSpec,
    /// Recompute the whole view on next refresh (set at registration
    /// and after any DELETE/UPDATE on a source table).
    pub full_dirty: bool,
    /// Partitions to re-evaluate on next refresh.
    pub dirty: BTreeSet<PartitionKey>,
}

impl MatView {
    pub(crate) fn new(spec: MatViewSpec) -> MatView {
        MatView {
            spec,
            full_dirty: true,
            dirty: BTreeSet::new(),
        }
    }

    /// Pending refresh work: partitions plus one unit for a pending
    /// full rebuild.
    pub(crate) fn lag(&self) -> usize {
        self.dirty.len() + usize::from(self.full_dirty)
    }
}

/// Sanitizes a result-column name into a SQL identifier for the
/// backing table; deduplicates against `used`.
pub(crate) fn backing_column_name(raw: &str, used: &[String]) -> String {
    let mut s: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.as_bytes()[0].is_ascii_digit() {
        s.insert(0, 'c');
    }
    let mut out = s.clone();
    let mut n = 2;
    while used.iter().any(|u| u.eq_ignore_ascii_case(&out)) {
        out = format!("{s}_{n}");
        n += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_key_orders_and_dedupes() {
        let mut set = BTreeSet::new();
        set.insert(PartitionKey(Value::Integer(3)));
        set.insert(PartitionKey(Value::Integer(3)));
        set.insert(PartitionKey(Value::Integer(1)));
        set.insert(PartitionKey(Value::Text("a".into())));
        set.insert(PartitionKey(Value::Null));
        set.insert(PartitionKey(Value::Real(f64::NAN)));
        set.insert(PartitionKey(Value::Real(f64::NAN)));
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn backing_names_sanitize_and_dedupe() {
        let mut used: Vec<String> = Vec::new();
        for (raw, want) in [
            ("time", "time"),
            ("TIME", "TIME_2"),
            ("COUNT(*)", "COUNT___"),
            ("1st", "c1st"),
            ("", "c"),
        ] {
            let got = backing_column_name(raw, &used);
            assert_eq!(got, want);
            used.push(got);
        }
    }
}

//! A recursive-descent SQL parser covering the dialect LibSEAL needs:
//! the paper's invariant and trimming queries (correlated subqueries,
//! NATURAL JOIN, views, GROUP BY/HAVING, ORDER BY/LIMIT) plus the DML
//! the service-specific modules use.

use crate::ast::*;
use crate::token::{tokenize, Token};
use crate::value::Value;
use crate::{DbError, Result};

/// Parses a string of one or more `;`-separated statements.
pub fn parse(sql: &str) -> Result<Vec<Stmt>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if p.at_end() {
            break;
        }
        stmts.push(p.parse_stmt()?);
    }
    Ok(stmts)
}

/// Parses exactly one statement.
pub fn parse_one(sql: &str) -> Result<Stmt> {
    let mut stmts = parse(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(DbError::parse("empty statement")),
        _ => Err(DbError::parse("expected a single statement")),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected '{s}', found {:?}",
                self.peek()
            )))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            Some(Token::QuotedIdent(w)) => Ok(w),
            other => Err(DbError::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.parse_create_table();
            }
            if self.eat_kw("VIEW") {
                let if_not_exists = self.parse_if_not_exists()?;
                let name = self.ident()?;
                self.expect_kw("AS")?;
                let query = self.parse_select()?;
                return Ok(Stmt::CreateView {
                    name,
                    query,
                    if_not_exists,
                });
            }
            if self.eat_kw("INDEX") {
                let if_not_exists = self.parse_if_not_exists()?;
                let name = self.ident()?;
                self.expect_kw("ON")?;
                let table = self.ident()?;
                self.expect_symbol("(")?;
                let column = self.ident()?;
                self.expect_symbol(")")?;
                return Ok(Stmt::CreateIndex {
                    name,
                    table,
                    column,
                    if_not_exists,
                });
            }
            return Err(DbError::parse(
                "CREATE must be followed by TABLE, VIEW or INDEX",
            ));
        }
        if self.eat_kw("DROP") {
            let kind = if self.eat_kw("TABLE") {
                "table"
            } else if self.eat_kw("VIEW") {
                "view"
            } else if self.eat_kw("INDEX") {
                "index"
            } else {
                return Err(DbError::parse(
                    "DROP must be followed by TABLE, VIEW or INDEX",
                ));
            };
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(match kind {
                "view" => Stmt::DropView { name, if_exists },
                "index" => Stmt::DropIndex { name, if_exists },
                _ => Stmt::DropTable { name, if_exists },
            });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            let columns = if self.eat_symbol("(") {
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                Some(cols)
            } else {
                None
            };
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_symbol("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                rows.push(row);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            return Ok(Stmt::Insert {
                table,
                columns,
                rows,
            });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete { table, filter });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_symbol("=")?;
                sets.push((col, self.parse_expr()?));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            let filter = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Update {
                table,
                sets,
                filter,
            });
        }
        Err(DbError::parse(format!(
            "unsupported statement starting with {:?}",
            self.peek()
        )))
    }

    fn parse_if_not_exists(&mut self) -> Result<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_create_table(&mut self) -> Result<Stmt> {
        let if_not_exists = self.parse_if_not_exists()?;
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            // Type declaration: any words up to a constraint keyword,
            // comma or close paren.
            let mut decl = String::new();
            while let Some(Token::Word(w)) = self.peek() {
                if ["PRIMARY", "NOT", "UNIQUE", "DEFAULT", "CHECK", "REFERENCES"]
                    .iter()
                    .any(|k| w.eq_ignore_ascii_case(k))
                {
                    break;
                }
                if !decl.is_empty() {
                    decl.push(' ');
                }
                decl.push_str(w);
                self.pos += 1;
            }
            // Optional parenthesised size, e.g. VARCHAR(20).
            if self.eat_symbol("(") {
                while !self.eat_symbol(")") {
                    if self.next().is_none() {
                        return Err(DbError::parse("unterminated type declaration"));
                    }
                }
            }
            let mut primary_key = false;
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    primary_key = true;
                } else if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                } else if self.eat_kw("UNIQUE") {
                } else if self.eat_kw("DEFAULT") {
                    let _ = self.parse_expr()?;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                decl_type: decl,
                primary_key,
            });
            if !self.eat_symbol(",") {
                break;
            }
            // Table-level PRIMARY KEY (cols) constraint.
            if self.peek_kw("PRIMARY") {
                self.expect_kw("PRIMARY")?;
                self.expect_kw("KEY")?;
                self.expect_symbol("(")?;
                loop {
                    let key_col = self.ident()?;
                    if let Some(c) = columns.iter_mut().find(|c| c.name == key_col) {
                        c.primary_key = true;
                    }
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    /// Parses a full SELECT (after optionally consuming the keyword).
    pub fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            let _ = self.eat_kw("ALL");
            false
        };

        let mut projections = Vec::new();
        loop {
            if self.eat_symbol("*") {
                projections.push(SelectItem::Star);
            } else if matches!(self.peek(), Some(Token::Word(_) | Token::QuotedIdent(_)))
                && matches!(self.peek2(), Some(Token::Symbol(".")))
                && matches!(self.tokens.get(self.pos + 2), Some(Token::Symbol("*")))
            {
                let t = self.ident()?;
                self.expect_symbol(".")?;
                self.expect_symbol("*")?;
                projections.push(SelectItem::QualifiedStar(t));
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS")
                    || matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w))
                {
                    Some(self.ident()?)
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }

        let from = if self.eat_kw("FROM") {
            Some(self.parse_from()?)
        } else {
            None
        };

        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderTerm { expr, desc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.parse_expr()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.parse_expr()?);
            } else if self.eat_symbol(",") {
                // LIMIT offset, count (MySQL/SQLite form).
                offset = limit.take();
                limit = Some(self.parse_expr()?);
            }
        }

        Ok(Select {
            distinct,
            projections,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        let first = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_symbol(",") {
                let table = self.parse_table_ref()?;
                joins.push(Join {
                    kind: JoinKind::Inner,
                    table,
                    on: None,
                });
            } else if self.peek_kw("NATURAL") {
                self.expect_kw("NATURAL")?;
                let _ = self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                let table = self.parse_table_ref()?;
                joins.push(Join {
                    kind: JoinKind::Natural,
                    table,
                    on: None,
                });
            } else if self.peek_kw("LEFT") {
                self.expect_kw("LEFT")?;
                let _ = self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                let table = self.parse_table_ref()?;
                let on = if self.eat_kw("ON") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                joins.push(Join {
                    kind: JoinKind::Left,
                    table,
                    on,
                });
            } else if self.peek_kw("JOIN") || self.peek_kw("INNER") || self.peek_kw("CROSS") {
                let _ = self.eat_kw("INNER");
                let _ = self.eat_kw("CROSS");
                self.expect_kw("JOIN")?;
                let table = self.parse_table_ref()?;
                let on = if self.eat_kw("ON") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                joins.push(Join {
                    kind: JoinKind::Inner,
                    table,
                    on,
                });
            } else {
                break;
            }
        }
        Ok(FromClause { first, joins })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            let query = self.parse_select()?;
            self.expect_symbol(")")?;
            let alias = if self.eat_kw("AS")
                || matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w))
            {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // Expression parsing: precedence climbing.

    /// Parses an expression.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            // NOT EXISTS is handled in primary; general NOT here.
            if self.peek_kw("EXISTS") {
                let mut e = self.parse_primary()?;
                if let Expr::Exists { negated, .. } = &mut e {
                    *negated = true;
                }
                return Ok(e);
            }
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_symbol("(")?;
            if self.peek_kw("SELECT") {
                let q = self.parse_select()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(DbError::parse("expected IN, BETWEEN or LIKE after NOT"));
        }
        let op = if self.eat_symbol("=") || self.eat_symbol("==") {
            BinOp::Eq
        } else if self.eat_symbol("!=") || self.eat_symbol("<>") {
            BinOp::Ne
        } else if self.eat_symbol("<=") {
            BinOp::Le
        } else if self.eat_symbol(">=") {
            BinOp::Ge
        } else if self.eat_symbol("<") {
            BinOp::Lt
        } else if self.eat_symbol(">") {
            BinOp::Gt
        } else {
            return Ok(left);
        };
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinOp::Add
            } else if self.eat_symbol("-") {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_concat()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinOp::Mul
            } else if self.eat_symbol("/") {
                BinOp::Div
            } else if self.eat_symbol("%") {
                BinOp::Rem
            } else {
                break;
            };
            let right = self.parse_concat()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_concat(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        while self.eat_symbol("||") {
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op: BinOp::Concat,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Integer(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Real(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Blob(b)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Blob(b)))
            }
            Some(Token::Param(n)) => {
                self.pos += 1;
                Ok(Expr::Param(n))
            }
            Some(Token::Symbol("(")) => {
                self.pos += 1;
                if self.peek_kw("SELECT") {
                    let q = self.parse_select()?;
                    self.expect_symbol(")")?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("CASE") => {
                self.pos += 1;
                let operand = if self.peek_kw("WHEN") {
                    None
                } else {
                    Some(Box::new(self.parse_expr()?))
                };
                let mut branches = Vec::new();
                while self.eat_kw("WHEN") {
                    let when = self.parse_expr()?;
                    self.expect_kw("THEN")?;
                    let then = self.parse_expr()?;
                    branches.push((when, then));
                }
                let else_expr = if self.eat_kw("ELSE") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                Ok(Expr::Case {
                    operand,
                    branches,
                    else_expr,
                })
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("EXISTS") => {
                self.pos += 1;
                self.expect_symbol("(")?;
                let q = self.parse_select()?;
                self.expect_symbol(")")?;
                Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: false,
                })
            }
            Some(Token::Word(w)) if is_reserved(&w) => Err(DbError::parse(format!(
                "unexpected keyword {w} in expression"
            ))),
            Some(Token::Word(_)) | Some(Token::QuotedIdent(_)) => {
                let name = self.ident()?;
                // Function call?
                if matches!(self.peek(), Some(Token::Symbol("("))) {
                    self.pos += 1;
                    let fname = name.to_ascii_uppercase();
                    let mut star = false;
                    let mut distinct = false;
                    let mut args = Vec::new();
                    if self.eat_symbol("*") {
                        star = true;
                    } else if !matches!(self.peek(), Some(Token::Symbol(")"))) {
                        distinct = self.eat_kw("DISTINCT");
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(")")?;
                    return Ok(Expr::Function {
                        name: fname,
                        args,
                        star,
                        distinct,
                    });
                }
                // Qualified column t.c?
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(DbError::parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "BETWEEN",
        "LIKE",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "CROSS",
        "NATURAL",
        "ON",
        "UNION",
        "EXCEPT",
        "INTERSECT",
        "DISTINCT",
        "ALL",
        "INSERT",
        "INTO",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "CREATE",
        "TABLE",
        "VIEW",
        "DROP",
        "IF",
        "EXISTS",
        "PRIMARY",
        "KEY",
        "DESC",
        "ASC",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s =
            parse_one("SELECT a, b AS bee FROM t WHERE a > 3 ORDER BY b DESC LIMIT 10").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.projections.len(), 2);
        assert!(sel.filter.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(sel.order_by[0].desc);
        assert!(sel.limit.is_some());
    }

    #[test]
    fn parses_paper_git_soundness_invariant() {
        // Verbatim from §6.2 of the paper.
        let sql = "SELECT * FROM advertisements a WHERE cid != (
            SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
            u.branch = a.branch AND u.time < a.time ORDER BY
            u.time DESC LIMIT 1)";
        let s = parse_one(sql).unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert!(matches!(
            sel.filter,
            Some(Expr::Binary { op: BinOp::Ne, .. })
        ));
    }

    #[test]
    fn parses_paper_branchcnt_view() {
        // Verbatim from §6.2 of the paper.
        let sql = "CREATE VIEW branchcnt AS
            SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
            FROM advertisements a
            JOIN updates u ON u.time < a.time AND u.repo = a.repo
            WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
            FROM updates WHERE branch = u.branch
            AND repo = u.repo AND time < a.time) GROUP BY
            a.time,a.repo,a.branch";
        let s = parse_one(sql).unwrap();
        let Stmt::CreateView { name, query, .. } = s else {
            panic!()
        };
        assert_eq!(name, "branchcnt");
        assert!(query.distinct);
        assert_eq!(query.group_by.len(), 3);
        let from = query.from.unwrap();
        assert_eq!(from.joins.len(), 1);
        assert!(from.joins[0].on.is_some());
    }

    #[test]
    fn parses_paper_completeness_invariant() {
        // Verbatim from §1 of the paper.
        let sql = "SELECT time, repo FROM advertisements
            NATURAL JOIN branchcnt
            GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt";
        let s = parse_one(sql).unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let from = sel.from.unwrap();
        assert_eq!(from.joins[0].kind, JoinKind::Natural);
        assert_eq!(sel.group_by.len(), 3);
        assert!(sel.having.is_some());
    }

    #[test]
    fn parses_paper_trimming_queries() {
        // Verbatim from §5.1 of the paper.
        let stmts = parse(
            "DELETE FROM advertisements;
             DELETE FROM updates WHERE time NOT IN
               (SELECT MAX(time) FROM updates GROUP BY repo, branch);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        let Stmt::Delete {
            filter: Some(f), ..
        } = &stmts[1]
        else {
            panic!()
        };
        assert!(matches!(f, Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn parses_create_table_with_types() {
        let s = parse_one(
            "CREATE TABLE IF NOT EXISTS updates(
                time INTEGER PRIMARY KEY, repo TEXT, branch TEXT,
                cid TEXT, type TEXT)",
        )
        .unwrap();
        let Stmt::CreateTable {
            columns,
            if_not_exists,
            ..
        } = s
        else {
            panic!()
        };
        assert!(if_not_exists);
        assert_eq!(columns.len(), 5);
        assert!(columns[0].primary_key);
        assert_eq!(columns[1].decl_type, "TEXT");
    }

    #[test]
    fn parses_insert_with_params() {
        let s = parse_one("INSERT INTO t(a, b) VALUES (?, ?), (?, 4)").unwrap();
        let Stmt::Insert { rows, columns, .. } = s else {
            panic!()
        };
        assert_eq!(columns.unwrap().len(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Expr::Param(0));
        assert_eq!(rows[1][0], Expr::Param(2));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let s = parse_one("SELECT 1 WHERE NOT EXISTS (SELECT 1 FROM t)").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert!(matches!(
            sel.filter,
            Some(Expr::Exists { negated: true, .. })
        ));
    }

    #[test]
    fn parses_case_expression() {
        let s = parse_one("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.projections[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Case { .. }));
    }

    #[test]
    fn parses_between_and_like() {
        let s = parse_one("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%'").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert!(sel.filter.is_some());
    }

    #[test]
    fn table_alias_without_as() {
        let s = parse_one("SELECT a.x FROM mytable a, other b").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let from = sel.from.unwrap();
        assert_eq!(from.first.effective_name(), Some("a"));
        assert_eq!(from.joins.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_one("SELEC x FROM t").is_err());
        assert!(parse_one("SELECT FROM").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn subquery_in_from() {
        let s = parse_one("SELECT n FROM (SELECT COUNT(*) AS n FROM t) sub").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let from = sel.from.unwrap();
        assert!(matches!(from.first, TableRef::Subquery { .. }));
        assert_eq!(from.first.effective_name(), Some("sub"));
    }

    #[test]
    fn update_statement() {
        let s = parse_one("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Stmt::Update { sets, filter, .. } = s else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(filter.is_some());
    }
}

//! Tables, views and their metadata.

use std::collections::HashMap;

use crate::ast::{ColumnDef, Select};
use crate::value::{Affinity, Value};
use crate::{DbError, Result};

/// A column of a stored table.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (original case).
    pub name: String,
    /// Declared type.
    pub decl_type: String,
    /// Affinity derived from the declared type.
    pub affinity: Affinity,
    /// Declared PRIMARY KEY?
    pub primary_key: bool,
}

/// A stored table: schema plus row data.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (original case).
    pub name: String,
    /// Column definitions.
    pub columns: Vec<Column>,
    /// Row data.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Index of column `name` (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Approximate in-memory size in bytes (for EPC accounting).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
            .sum()
    }
}

/// The database catalog: named tables and views.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, (String, Select)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Fails if a table or view of that name exists and
    /// `if_not_exists` is false.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::schema(format!("table {name} already exists")));
        }
        let cols = columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                decl_type: c.decl_type.clone(),
                affinity: Affinity::from_decl(&c.decl_type),
                primary_key: c.primary_key,
            })
            .collect();
        self.tables.insert(
            key,
            Table {
                name: name.to_string(),
                columns: cols,
                rows: Vec::new(),
            },
        );
        Ok(())
    }

    /// Creates a view.
    ///
    /// # Errors
    ///
    /// Fails when the name is taken and `if_not_exists` is false.
    pub fn create_view(&mut self, name: &str, query: Select, if_not_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::schema(format!("view {name} already exists")));
        }
        self.views.insert(key, (name.to_string(), query));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Fails when missing and `if_exists` is false.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() && !if_exists {
            return Err(DbError::schema(format!("no such table: {name}")));
        }
        Ok(())
    }

    /// Drops a view.
    ///
    /// # Errors
    ///
    /// Fails when missing and `if_exists` is false.
    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.views.remove(&key).is_none() && !if_exists {
            return Err(DbError::schema(format!("no such view: {name}")));
        }
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Looks up a view's defining query.
    pub fn view(&self, name: &str) -> Option<&Select> {
        self.views.get(&name.to_ascii_lowercase()).map(|(_, q)| q)
    }

    /// Iterates over tables in name order (for dumps).
    pub fn tables_sorted(&self) -> Vec<&Table> {
        let mut v: Vec<&Table> = self.tables.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Iterates over views in name order: `(name, query)`.
    pub fn views_sorted(&self) -> Vec<(&str, &Select)> {
        let mut v: Vec<(&str, &Select)> = self
            .views
            .values()
            .map(|(n, q)| (n.as_str(), q))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Total approximate size of all table data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables.values().map(Table::size_bytes).sum()
    }
}

//! Tables, views and their metadata.

use std::collections::HashMap;

use crate::ast::{ColumnDef, Select};
use crate::value::{Affinity, Value};
use crate::{DbError, Result};

/// A column of a stored table.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (original case).
    pub name: String,
    /// Declared type.
    pub decl_type: String,
    /// Affinity derived from the declared type.
    pub affinity: Affinity,
    /// Declared PRIMARY KEY?
    pub primary_key: bool,
}

/// A hash index over one column of a table: `group_key` of the value
/// maps to the row positions holding it, in scan order.
#[derive(Clone, Debug)]
pub struct Index {
    /// Index name (original case).
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    /// `group_key` → row positions, ascending.
    map: HashMap<String, Vec<usize>>,
    /// Set when the column holds a NaN real. `group_key` separates
    /// NaN bit patterns while SQL comparison treats NaN loosely, so a
    /// poisoned index must not be probed.
    poisoned: bool,
}

impl Index {
    fn add(&mut self, row: &[Value], pos: usize) {
        let v = &row[self.column];
        if matches!(v, Value::Real(f) if f.is_nan()) {
            self.poisoned = true;
        }
        self.map.entry(v.group_key()).or_default().push(pos);
    }

    fn rebuild(&mut self, rows: &[Vec<Value>]) {
        self.map.clear();
        self.poisoned = false;
        for (pos, row) in rows.iter().enumerate() {
            self.add(row, pos);
        }
    }

    /// Row positions whose indexed value shares `key`'s equality
    /// class. `None` when the index cannot be trusted (poisoned or a
    /// NaN probe key); an empty slice is a definitive miss.
    pub fn probe(&self, key: &Value) -> Option<&[usize]> {
        if self.poisoned || matches!(key, Value::Real(f) if f.is_nan()) {
            return None;
        }
        Some(self.map.get(&key.group_key()).map_or(&[], |v| v.as_slice()))
    }
}

/// A stored table: schema plus row data.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (original case).
    pub name: String,
    /// Column definitions.
    pub columns: Vec<Column>,
    /// Row data.
    pub rows: Vec<Vec<Value>>,
    /// Hash indexes, kept in sync with `rows` by the engine.
    indexes: Vec<Index>,
}

impl Table {
    /// Index of column `name` (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Approximate in-memory size in bytes (for EPC accounting).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
            .sum()
    }

    /// The index covering column `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// Names of the indexes on this table, in creation order.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|ix| ix.name.as_str()).collect()
    }

    /// Indexes in creation order: `(name, column name)`.
    pub fn indexes_sorted(&self) -> Vec<(&str, &str)> {
        self.indexes
            .iter()
            .map(|ix| (ix.name.as_str(), self.columns[ix.column].name.as_str()))
            .collect()
    }

    /// Registers the most recently pushed row with every index
    /// (incremental INSERT maintenance).
    pub fn index_appended_row(&mut self) {
        let Some(row) = self.rows.last() else { return };
        let pos = self.rows.len() - 1;
        for ix in &mut self.indexes {
            ix.add(row, pos);
        }
    }

    /// Rebuilds every index from scratch (after DELETE/UPDATE, which
    /// shift row positions).
    pub fn rebuild_indexes(&mut self) {
        for ix in &mut self.indexes {
            ix.rebuild(&self.rows);
        }
    }

    /// Whether every index exactly matches a fresh rebuild over the
    /// current rows (test hook for maintenance bugs).
    pub fn indexes_consistent(&self) -> bool {
        self.indexes.iter().all(|ix| {
            let mut fresh = Index {
                name: ix.name.clone(),
                column: ix.column,
                map: HashMap::new(),
                poisoned: false,
            };
            fresh.rebuild(&self.rows);
            fresh.map == ix.map && fresh.poisoned == ix.poisoned
        })
    }
}

/// The database catalog: named tables and views.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, (String, Select)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Fails if a table or view of that name exists and
    /// `if_not_exists` is false.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::schema(format!("table {name} already exists")));
        }
        let cols = columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                decl_type: c.decl_type.clone(),
                affinity: Affinity::from_decl(&c.decl_type),
                primary_key: c.primary_key,
            })
            .collect();
        self.tables.insert(
            key,
            Table {
                name: name.to_string(),
                columns: cols,
                rows: Vec::new(),
                indexes: Vec::new(),
            },
        );
        Ok(())
    }

    /// Creates a hash index over `table(column)` and builds it from
    /// the current rows.
    ///
    /// # Errors
    ///
    /// Fails when the table or column is missing, or when an index of
    /// that name exists and `if_not_exists` is false.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        column: &str,
        if_not_exists: bool,
    ) -> Result<()> {
        if self.index_exists(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::schema(format!("index {name} already exists")));
        }
        let Some(t) = self.tables.get_mut(&table.to_ascii_lowercase()) else {
            return Err(DbError::schema(format!("no such table: {table}")));
        };
        let Some(col) = t.column_index(column) else {
            return Err(DbError::schema(format!("no such column: {column}")));
        };
        let mut ix = Index {
            name: name.to_string(),
            column: col,
            map: HashMap::new(),
            poisoned: false,
        };
        ix.rebuild(&t.rows);
        t.indexes.push(ix);
        Ok(())
    }

    /// Drops an index by name.
    ///
    /// # Errors
    ///
    /// Fails when missing and `if_exists` is false.
    pub fn drop_index(&mut self, name: &str, if_exists: bool) -> Result<()> {
        for t in self.tables.values_mut() {
            if let Some(pos) = t
                .indexes
                .iter()
                .position(|ix| ix.name.eq_ignore_ascii_case(name))
            {
                t.indexes.remove(pos);
                return Ok(());
            }
        }
        if if_exists {
            Ok(())
        } else {
            Err(DbError::schema(format!("no such index: {name}")))
        }
    }

    /// Whether an index with this name exists on any table.
    pub fn index_exists(&self, name: &str) -> bool {
        self.tables.values().any(|t| {
            t.indexes
                .iter()
                .any(|ix| ix.name.eq_ignore_ascii_case(name))
        })
    }

    /// Creates a view.
    ///
    /// # Errors
    ///
    /// Fails when the name is taken and `if_not_exists` is false.
    pub fn create_view(&mut self, name: &str, query: Select, if_not_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::schema(format!("view {name} already exists")));
        }
        self.views.insert(key, (name.to_string(), query));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Fails when missing and `if_exists` is false.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() && !if_exists {
            return Err(DbError::schema(format!("no such table: {name}")));
        }
        Ok(())
    }

    /// Drops a view.
    ///
    /// # Errors
    ///
    /// Fails when missing and `if_exists` is false.
    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.views.remove(&key).is_none() && !if_exists {
            return Err(DbError::schema(format!("no such view: {name}")));
        }
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Looks up a view's defining query.
    pub fn view(&self, name: &str) -> Option<&Select> {
        self.views.get(&name.to_ascii_lowercase()).map(|(_, q)| q)
    }

    /// Iterates over tables in name order (for dumps).
    pub fn tables_sorted(&self) -> Vec<&Table> {
        let mut v: Vec<&Table> = self.tables.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Iterates over views in name order: `(name, query)`.
    pub fn views_sorted(&self) -> Vec<(&str, &Select)> {
        let mut v: Vec<(&str, &Select)> =
            self.views.values().map(|(n, q)| (n.as_str(), q)).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Total approximate size of all table data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables.values().map(Table::size_bytes).sum()
    }
}

#![warn(missing_docs)]
//! An embedded relational SQL database — the workspace's stand-in for
//! the SQLite engine that LibSEAL runs inside its enclave (§3.1, §5).
//!
//! The engine supports the SQL dialect the paper's audit schemas,
//! invariants and trimming queries require, verbatim: `CREATE
//! TABLE`/`VIEW`, `INSERT`, `DELETE`, `UPDATE`, and `SELECT` with
//! joins (including `NATURAL JOIN`), `GROUP BY`/`HAVING`, correlated
//! scalar and `IN` subqueries, `DISTINCT`, `ORDER BY`/`LIMIT`,
//! aggregates, and `?` bind parameters. Durability comes from a
//! statement-granularity write-ahead journal with pluggable sealing
//! ([`journal::JournalCodec`]) and snapshot compaction.
//!
//! Execution is an optimizing interpreter: `CREATE INDEX` declares
//! per-table hash indexes (maintained incrementally on DML) that
//! serve single-table equality filters, equality conjuncts in join
//! predicates run as build/probe hash joins, and subquery results are
//! memoized on their free-variable bindings. Every optimized path is
//! result-identical to the naive nested-loop interpreter, which
//! remains available via [`Database::set_planner_enabled`] and backs
//! the equivalence property tests.
//!
//! # Examples
//!
//! ```
//! use libseal_sealdb::Database;
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let r = db.query("SELECT COUNT(*) FROM t WHERE a > 1", &[]).unwrap();
//! assert_eq!(r.scalar().unwrap().to_string(), "1");
//! ```

pub mod ast;
pub mod catalog;
pub mod db;
pub mod exec;
pub mod journal;
pub mod parser;
pub mod plan;
pub mod token;
pub mod value;
pub mod view;

pub use db::{Database, QueryResult};
pub use journal::{JournalCodec, PlainCodec, SyncPolicy};
pub use value::Value;
pub use view::{MatViewSpec, RescanRule, SourceRule};

/// Errors produced by the database engine.
#[derive(Debug)]
pub enum DbError {
    /// SQL text failed to parse.
    Parse(String),
    /// Schema-level problem (missing table/column, duplicate name).
    Schema(String),
    /// Runtime execution failure.
    Exec(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl DbError {
    pub(crate) fn parse(msg: impl Into<String>) -> DbError {
        DbError::Parse(msg.into())
    }
    pub(crate) fn schema(msg: impl Into<String>) -> DbError {
        DbError::Schema(msg.into())
    }
    pub(crate) fn exec(msg: impl Into<String>) -> DbError {
        DbError::Exec(msg.into())
    }
    pub(crate) fn io(e: std::io::Error) -> DbError {
        DbError::Io(e)
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "SQL parse error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Exec(m) => write!(f, "execution error: {m}"),
            DbError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias for fallible database operations.
pub type Result<T> = std::result::Result<T, DbError>;

//! Lightweight planning helpers: conjunct analysis for hash joins,
//! index-probe eligibility, and free-variable analysis for subquery
//! memoization.
//!
//! Nothing in here changes semantics on its own — the executor only
//! uses these analyses to pick a faster, result-identical strategy
//! (hash build/probe instead of a nested loop, an index bucket instead
//! of a full scan, a cached subquery result instead of a re-execution).
//! Whenever an analysis cannot prove a rewrite safe it returns `None`
//! and the executor falls back to the naive path.

use crate::ast::{Expr, FromClause, Select, SelectItem, TableRef};
use crate::catalog::Catalog;
use crate::exec::ColMeta;
use crate::value::Value;

/// Splits a predicate into its top-level AND conjuncts.
pub fn split_and(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: crate::ast::BinOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// Resolves a column reference against a column list using the same
/// first-match rule as the executor's `Env::lookup`.
pub fn resolve_in(cols: &[ColMeta], table: Option<&str>, name: &str) -> Option<usize> {
    cols.iter().position(|c| {
        c.name.eq_ignore_ascii_case(name)
            && match (table, &c.table) {
                (Some(q), Some(t)) => q.eq_ignore_ascii_case(t),
                (Some(_), None) => false,
                (None, _) => true,
            }
    })
}

/// Which side of a join a column reference binds to under the
/// combined-row resolution order (left columns first).
enum Side {
    Left(usize),
    Right(usize),
}

fn side_of(e: &Expr, left: &[ColMeta], right: &[ColMeta]) -> Option<Side> {
    let Expr::Column { table, name } = e else {
        return None;
    };
    if let Some(li) = resolve_in(left, table.as_deref(), name) {
        return Some(Side::Left(li));
    }
    resolve_in(right, table.as_deref(), name).map(Side::Right)
}

/// Recognises `l.x = r.y` (either orientation) where the two sides
/// resolve to different join sides; returns `(left_idx, right_idx)`.
pub fn equi_key(e: &Expr, left: &[ColMeta], right: &[ColMeta]) -> Option<(usize, usize)> {
    let Expr::Binary {
        op: crate::ast::BinOp::Eq,
        left: a,
        right: b,
    } = e
    else {
        return None;
    };
    match (side_of(a, left, right)?, side_of(b, left, right)?) {
        (Side::Left(l), Side::Right(r)) | (Side::Right(r), Side::Left(l)) => Some((l, r)),
        _ => None,
    }
}

/// Whether the expression contains a subquery anywhere.
pub fn has_subquery(e: &Expr) -> bool {
    match e {
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_) => true,
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => has_subquery(expr),
        Expr::Binary { left, right, .. } => has_subquery(left) || has_subquery(right),
        Expr::Function { args, .. } => args.iter().any(has_subquery),
        Expr::InList { expr, list, .. } => has_subquery(expr) || list.iter().any(has_subquery),
        Expr::Between {
            expr, low, high, ..
        } => has_subquery(expr) || has_subquery(low) || has_subquery(high),
        Expr::Like { expr, pattern, .. } => has_subquery(expr) || has_subquery(pattern),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().is_some_and(has_subquery)
                || branches
                    .iter()
                    .any(|(w, t)| has_subquery(w) || has_subquery(t))
                || else_expr.as_deref().is_some_and(has_subquery)
        }
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => false,
    }
}

/// Whether the expression references any column that resolves in
/// `cols` (i.e. depends on the scanned row rather than only on outer
/// scopes, parameters and literals). Does not look inside subqueries —
/// callers reject those separately with [`has_subquery`].
pub fn refs_scope(e: &Expr, cols: &[ColMeta]) -> bool {
    match e {
        Expr::Column { table, name } => resolve_in(cols, table.as_deref(), name).is_some(),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => refs_scope(expr, cols),
        Expr::Binary { left, right, .. } => refs_scope(left, cols) || refs_scope(right, cols),
        Expr::Function { args, .. } => args.iter().any(|a| refs_scope(a, cols)),
        Expr::InList { expr, list, .. } => {
            refs_scope(expr, cols) || list.iter().any(|i| refs_scope(i, cols))
        }
        Expr::Between {
            expr, low, high, ..
        } => refs_scope(expr, cols) || refs_scope(low, cols) || refs_scope(high, cols),
        Expr::Like { expr, pattern, .. } => refs_scope(expr, cols) || refs_scope(pattern, cols),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().is_some_and(|o| refs_scope(o, cols))
                || branches
                    .iter()
                    .any(|(w, t)| refs_scope(w, cols) || refs_scope(t, cols))
                || else_expr.as_deref().is_some_and(|e| refs_scope(e, cols))
        }
        Expr::Literal(_) | Expr::Param(_) => false,
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_) => false,
    }
}

/// Whether any of the given columns holds a `NaN` real in `data`.
///
/// `total_cmp` treats NaN as equal to every numeric while `group_key`
/// separates it by bit pattern, so hash-based strategies are only
/// sound when the key columns are NaN-free.
pub fn has_nan(data: &[Vec<Value>], cols: impl Iterator<Item = usize> + Clone) -> bool {
    data.iter().any(|row| {
        cols.clone()
            .any(|c| matches!(row.get(c), Some(Value::Real(f)) if f.is_nan()))
    })
}

/// Appends one self-delimiting join-key part for `v` to `key`.
///
/// The part is the value's `group_key` (so SQL equality classes —
/// e.g. `2` and `2.0` — share a key) length-prefixed to keep composite
/// keys unambiguous even when text values contain the separator.
pub fn push_key_part(key: &mut String, v: &Value) {
    let gk = v.group_key();
    key.push_str(&gk.len().to_string());
    key.push(':');
    key.push_str(&gk);
}

/// Renders a value for a memo-cache key. Unlike `group_key`, this is
/// an exact representation: `2` and `2.0` map to different keys
/// because e.g. `TYPEOF` can distinguish them inside the subquery.
pub fn memo_key_part(key: &mut String, v: &Value) {
    match v {
        Value::Null => key.push('N'),
        Value::Integer(i) => {
            key.push('I');
            key.push_str(&i.to_string());
        }
        Value::Real(f) => {
            key.push('R');
            key.push_str(&f.to_bits().to_string());
        }
        Value::Text(s) => {
            key.push('T');
            key.push_str(&s.len().to_string());
            key.push(':');
            key.push_str(s);
        }
        Value::Blob(b) => {
            key.push('B');
            for x in b {
                key.push_str(&format!("{x:02x}"));
            }
        }
    }
}

/// A FROM source as seen by the free-variable analysis: the label it
/// is referenced by, and its column names when they can be determined
/// statically (None = unknown, treat nothing as bound by it for
/// qualified refs).
struct Source {
    label: Option<String>,
    cols: Option<Vec<String>>,
}

/// Output column names of a SELECT, when statically derivable.
/// `None` when the projection contains a star.
fn select_out_names(sel: &Select) -> Option<Vec<String>> {
    let mut out = Vec::new();
    for item in &sel.projections {
        match item {
            SelectItem::Star | SelectItem::QualifiedStar(_) => return None,
            SelectItem::Expr { expr, alias } => {
                out.push(alias.clone().unwrap_or_else(|| expr.display_name()));
            }
        }
    }
    Some(out)
}

fn source_of(tref: &TableRef, catalog: &Catalog) -> Source {
    match tref {
        TableRef::Named { name, alias } => {
            let label = Some(alias.clone().unwrap_or_else(|| name.clone()));
            let cols = if let Some(t) = catalog.table(name) {
                Some(t.columns.iter().map(|c| c.name.clone()).collect())
            } else {
                catalog.view(name).and_then(select_out_names)
            };
            Source { label, cols }
        }
        TableRef::Subquery { query, alias } => Source {
            label: alias.clone(),
            cols: select_out_names(query),
        },
    }
}

/// Computes an over-approximation of the column references a SELECT
/// resolves in its *outer* environment (its free variables). Used to
/// key the subquery memo cache: two executions with identical free
/// bindings must return identical rows.
///
/// Over-approximating (reporting a bound ref as free) only costs cache
/// hits; under-approximating would be unsound, so every "bound"
/// decision errs on the side of freedom when column sets are unknown.
pub fn free_refs(sel: &Select, catalog: &Catalog) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    collect_free(sel, catalog, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_free(sel: &Select, catalog: &Catalog, out: &mut Vec<(Option<String>, String)>) {
    // Refs evaluated in this select's row scope.
    let mut mine: Vec<(Option<String>, String)> = Vec::new();

    let mut sources: Vec<Source> = Vec::new();
    let mut has_natural = false;
    if let Some(from) = &sel.from {
        for tref in std::iter::once(&from.first).chain(from.joins.iter().map(|j| &j.table)) {
            sources.push(source_of(tref, catalog));
            // FROM sources execute against this select's *outer*
            // environment (not its row scope), so their free refs
            // escape directly.
            match tref {
                TableRef::Named { name, .. } => {
                    if catalog.table(name).is_none() {
                        if let Some(q) = catalog.view(name) {
                            collect_free(q, catalog, out);
                        }
                    }
                }
                TableRef::Subquery { query, .. } => collect_free(query, catalog, out),
            }
        }
        for join in &from.joins {
            if join.kind == crate::ast::JoinKind::Natural {
                // NATURAL JOIN strips qualifiers from merged columns,
                // so qualified refs may fall through to the outer
                // scope; treat every qualified ref as free.
                has_natural = true;
            }
            if let Some(on) = &join.on {
                collect_refs(on, catalog, &mut mine);
            }
        }
    }

    for item in &sel.projections {
        if let SelectItem::Expr { expr, .. } = item {
            collect_refs(expr, catalog, &mut mine);
        }
    }
    if let Some(f) = &sel.filter {
        collect_refs(f, catalog, &mut mine);
    }
    for g in &sel.group_by {
        collect_refs(g, catalog, &mut mine);
    }
    if let Some(h) = &sel.having {
        collect_refs(h, catalog, &mut mine);
    }
    for o in &sel.order_by {
        collect_refs(&o.expr, catalog, &mut mine);
    }
    // LIMIT/OFFSET are evaluated directly against the outer
    // environment, never the row scope: escape unfiltered.
    if let Some(l) = &sel.limit {
        collect_refs(l, catalog, out);
    }
    if let Some(o) = &sel.offset {
        collect_refs(o, catalog, out);
    }

    for (q, n) in mine {
        let bound = match &q {
            Some(qq) => {
                !has_natural
                    && sources.iter().any(|s| {
                        s.label
                            .as_deref()
                            .is_some_and(|l| l.eq_ignore_ascii_case(qq))
                            && s.cols
                                .as_ref()
                                .is_some_and(|cs| cs.iter().any(|c| c.eq_ignore_ascii_case(&n)))
                    })
            }
            None => sources.iter().any(|s| {
                s.cols
                    .as_ref()
                    .is_some_and(|cs| cs.iter().any(|c| c.eq_ignore_ascii_case(&n)))
            }),
        };
        if !bound {
            out.push((q, n));
        }
    }
}

/// Collects every column reference syntactically evaluated in the
/// current row scope; nested subqueries contribute their own free
/// refs (they see this scope through the environment chain).
fn collect_refs(e: &Expr, catalog: &Catalog, out: &mut Vec<(Option<String>, String)>) {
    match e {
        Expr::Column { table, name } => out.push((table.clone(), name.clone())),
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_refs(expr, catalog, out),
        Expr::Binary { left, right, .. } => {
            collect_refs(left, catalog, out);
            collect_refs(right, catalog, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_refs(a, catalog, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_refs(expr, catalog, out);
            for i in list {
                collect_refs(i, catalog, out);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            collect_refs(expr, catalog, out);
            collect_free(query, catalog, out);
        }
        Expr::Exists { query, .. } => collect_free(query, catalog, out),
        Expr::Subquery(query) => collect_free(query, catalog, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_refs(expr, catalog, out);
            collect_refs(low, catalog, out);
            collect_refs(high, catalog, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_refs(expr, catalog, out);
            collect_refs(pattern, catalog, out);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                collect_refs(op, catalog, out);
            }
            for (w, t) in branches {
                collect_refs(w, catalog, out);
                collect_refs(t, catalog, out);
            }
            if let Some(el) = else_expr {
                collect_refs(el, catalog, out);
            }
        }
    }
}

/// The single named, un-joined base table of a FROM clause, if that is
/// what it is (the only shape the index-scan fast path handles).
pub fn single_base_table(from: &FromClause) -> Option<(&str, Option<&str>)> {
    if !from.joins.is_empty() {
        return None;
    }
    match &from.first {
        TableRef::Named { name, alias } => Some((name.as_str(), alias.as_deref())),
        TableRef::Subquery { .. } => None,
    }
}

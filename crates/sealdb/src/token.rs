//! The SQL tokenizer.

use crate::{DbError, Result};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords matched by the
    /// parser; original case preserved).
    Word(String),
    /// Quoted identifier: `"name"` or `` `name` `` or `[name]`.
    QuotedIdent(String),
    /// String literal: `'text'`.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Blob literal `x'ABCD'`.
    Blob(Vec<u8>),
    /// A `?` or `?N` parameter placeholder (0-based index).
    Param(usize),
    /// Punctuation / operators.
    Symbol(&'static str),
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Splits `sql` into tokens.
///
/// # Errors
///
/// Returns a parse error on malformed literals or unknown characters.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut param_counter = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '\'' => {
                let (s, len) = read_quoted(&sql[i..], '\'')?;
                out.push(Token::Str(s));
                i += len;
            }
            '"' => {
                let (s, len) = read_quoted(&sql[i..], '"')?;
                out.push(Token::QuotedIdent(s));
                i += len;
            }
            '`' => {
                let (s, len) = read_quoted(&sql[i..], '`')?;
                out.push(Token::QuotedIdent(s));
                i += len;
            }
            '[' => {
                let end = sql[i..]
                    .find(']')
                    .ok_or_else(|| DbError::parse("unterminated [identifier]"))?;
                out.push(Token::QuotedIdent(sql[i + 1..i + end].to_string()));
                i += end + 1;
            }
            '?' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j > i + 1 {
                    let n: usize = sql[i + 1..j]
                        .parse()
                        .map_err(|_| DbError::parse("bad parameter number"))?;
                    if n == 0 {
                        return Err(DbError::parse("parameter numbers are 1-based"));
                    }
                    out.push(Token::Param(n - 1));
                    param_counter = param_counter.max(n);
                } else {
                    out.push(Token::Param(param_counter));
                    param_counter += 1;
                }
                i = j.max(i + 1);
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || ((bytes[j] == b'+' || bytes[j] == b'-')
                            && j > i
                            && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E')))
                {
                    if bytes[j] == b'.' || bytes[j] == b'e' || bytes[j] == b'E' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &sql[i..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        DbError::parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        DbError::parse(format!("bad integer literal {text}"))
                    })?));
                }
                i = j;
            }
            'x' | 'X' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = sql[i + 2..]
                    .find('\'')
                    .ok_or_else(|| DbError::parse("unterminated blob literal"))?;
                let hex = &sql[i + 2..i + 2 + end];
                if !hex.len().is_multiple_of(2) || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(DbError::parse("malformed blob literal"));
                }
                let blob = (0..hex.len())
                    .step_by(2)
                    .map(|k| {
                        u8::from_str_radix(&hex[k..k + 2], 16)
                            .map_err(|_| DbError::parse("malformed blob literal"))
                    })
                    .collect::<Result<Vec<u8>>>()?;
                out.push(Token::Blob(blob));
                i += 2 + end + 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                // Advance whole chars: byte-wise stepping through a
                // multi-byte identifier could stop mid-char and panic
                // on the slice below.
                let mut j = i;
                while let Some(ch) = sql[j..].chars().next() {
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                if j == i {
                    // `c` was a Latin-1 reinterpretation of a lead
                    // byte whose actual char is not identifier-like.
                    return Err(DbError::parse(format!("unexpected character at byte {i}")));
                }
                out.push(Token::Word(sql[i..j].to_string()));
                i = j;
            }
            _ => {
                // Multi-char operators first.
                let two = sql.get(i..i + 2).unwrap_or("");
                let sym: &'static str = match two {
                    "!=" => "!=",
                    "<>" => "<>",
                    "<=" => "<=",
                    ">=" => ">=",
                    "||" => "||",
                    "==" => "==",
                    _ => match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        ';' => ";",
                        '.' => ".",
                        '*' => "*",
                        '+' => "+",
                        '-' => "-",
                        '/' => "/",
                        '%' => "%",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        _ => {
                            return Err(DbError::parse(format!(
                                "unexpected character '{c}' at byte {i}"
                            )))
                        }
                    },
                };
                out.push(Token::Symbol(sym));
                i += sym.len();
            }
        }
    }
    Ok(out)
}

fn read_quoted(s: &str, quote: char) -> Result<(String, usize)> {
    // s starts at the opening quote. Doubled quotes escape.
    let mut out = String::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 1;
    while i < chars.len() {
        if chars[i] == quote {
            if chars.get(i + 1) == Some(&quote) {
                out.push(quote);
                i += 2;
            } else {
                let consumed: usize = chars[..=i].iter().map(|c| c.len_utf8()).sum();
                return Ok((out, consumed));
            }
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    Err(DbError::parse("unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let t = tokenize("SELECT a, b FROM t WHERE x != 3;").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert!(t.contains(&Token::Symbol("!=")));
        assert!(t.contains(&Token::Int(3)));
        assert_eq!(*t.last().unwrap(), Token::Symbol(";"));
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        let t = tokenize(r#""my col" `tick` [brack]"#).unwrap();
        assert_eq!(
            t,
            vec![
                Token::QuotedIdent("my col".into()),
                Token::QuotedIdent("tick".into()),
                Token::QuotedIdent("brack".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e3 10.0").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(10.0)
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- comment\n 1 /* block */ + 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Symbol("+"),
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn params_number_themselves() {
        let t = tokenize("? ? ?5 ?").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Param(0),
                Token::Param(1),
                Token::Param(4),
                Token::Param(5)
            ]
        );
    }

    #[test]
    fn blob_literal() {
        let t = tokenize("x'0aFF'").unwrap();
        assert_eq!(t, vec![Token::Blob(vec![0x0a, 0xff])]);
        assert!(tokenize("x'0a0'").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn concat_operator() {
        let t = tokenize("a || b").unwrap();
        assert_eq!(t[1], Token::Symbol("||"));
    }
}

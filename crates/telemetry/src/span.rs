//! Enclave-boundary-aware spans.
//!
//! A [`Span`] is a scope guard that measures wall-clock duration and,
//! uniquely for this simulated-SGX workspace, accumulates the
//! *transition cycle costs* charged while it is open: every ecall,
//! ocall and async handoff the cost model charges on the same thread
//! calls [`charge_boundary_cycles`], which adds the cycles to every
//! span currently open on that thread. A closed span records its
//! duration into a per-name histogram and pushes a [`SpanEvent`] into
//! the registry's bounded ring-buffer journal, so the most recent
//! traces are always inspectable from `/metrics`.
//!
//! Attribution is per-thread: cycles charged by the asynchronous
//! runtime's persistent enclave threads land on spans open *there*,
//! not on the requesting thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plat::sync::Mutex;

use crate::metrics::Histogram;

/// Which side of the simulated enclave boundary a span runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Outside the enclave (application / service code).
    Untrusted,
    /// Inside the enclave (trusted code reached via ecall).
    Enclave,
}

impl Side {
    /// Lower-case label used in the rendered span trace.
    pub fn as_str(self) -> &'static str {
        match self {
            Side::Untrusted => "untrusted",
            Side::Enclave => "enclave",
        }
    }
}

/// One completed span, as kept in the ring-buffer journal.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Monotonic sequence number (per registry).
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Boundary side the span ran on.
    pub side: Side,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Transition/handoff cycles charged on this thread while open.
    pub boundary_cycles: u64,
}

/// Bounded ring buffer of recent [`SpanEvent`]s.
pub(crate) struct SpanJournal {
    events: Mutex<VecDeque<SpanEvent>>,
    seq: AtomicU64,
    cap: usize,
}

impl SpanJournal {
    pub(crate) fn new(cap: usize) -> Self {
        SpanJournal {
            events: Mutex::new(VecDeque::with_capacity(cap)),
            seq: AtomicU64::new(0),
            cap,
        }
    }

    fn push(&self, mut ev: SpanEvent) {
        ev.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut q = self.events.lock();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(ev);
    }

    pub(crate) fn recent(&self) -> Vec<SpanEvent> {
        self.events.lock().iter().cloned().collect()
    }
}

thread_local! {
    /// Open-span cycle accumulators for this thread, innermost last.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Attributes `cycles` of enclave transition/handoff cost to every
/// span currently open on this thread. Called by the sgxsim cost
/// model's charging sites; a no-op when no span is open.
pub fn charge_boundary_cycles(cycles: u64) {
    OPEN_SPANS.with(|stack| {
        for frame in stack.borrow_mut().iter_mut() {
            *frame = frame.saturating_add(cycles);
        }
    });
}

/// A scope guard measuring one operation (see module docs). Created
/// via [`crate::Registry::span`]; records on drop. Not `Send`: the
/// boundary-cycle accounting is tied to the creating thread.
pub struct Span {
    name: &'static str,
    side: Side,
    start: Instant,
    /// `None` when the owning registry was disabled at creation.
    active: Option<(Histogram, Arc<SpanJournal>)>,
    _not_send: PhantomData<*mut ()>,
}

impl Span {
    pub(crate) fn new(
        name: &'static str,
        side: Side,
        active: Option<(Histogram, Arc<SpanJournal>)>,
    ) -> Span {
        if active.is_some() {
            OPEN_SPANS.with(|stack| stack.borrow_mut().push(0));
        }
        Span {
            name,
            side,
            start: Instant::now(),
            active,
            _not_send: PhantomData,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The boundary side this span runs on.
    pub fn side(&self) -> Side {
        self.side
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((hist, journal)) = self.active.take() else {
            return;
        };
        let boundary_cycles = OPEN_SPANS.with(|stack| stack.borrow_mut().pop().unwrap_or(0));
        let duration = self.start.elapsed();
        hist.record_duration(duration);
        journal.push(SpanEvent {
            seq: 0,
            name: self.name,
            side: self.side,
            duration,
            boundary_cycles,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_records_duration_and_cycles() {
        let r = Registry::new();
        {
            let _s = r.span("outer", Side::Untrusted);
            charge_boundary_cycles(100);
            {
                let _inner = r.span("inner", Side::Enclave);
                charge_boundary_cycles(50);
            }
            charge_boundary_cycles(7);
        }
        let events = r.recent_spans();
        assert_eq!(events.len(), 2);
        // Inner closes first; it saw only its own 50 cycles.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].side, Side::Enclave);
        assert_eq!(events[0].boundary_cycles, 50);
        // Outer accumulated everything charged while it was open.
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].boundary_cycles, 157);
        assert!(events[1].seq > events[0].seq);
        assert_eq!(r.histogram("span_outer_ns").count(), 1);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let r = Registry::new();
        r.set_enabled(false);
        {
            let _s = r.span("quiet", Side::Untrusted);
            charge_boundary_cycles(10);
        }
        assert!(r.recent_spans().is_empty());
    }

    #[test]
    fn charge_without_open_span_is_noop() {
        charge_boundary_cycles(1234);
    }

    #[test]
    fn journal_is_bounded() {
        let r = Registry::new();
        for _ in 0..600 {
            let _s = r.span("b", Side::Untrusted);
        }
        let events = r.recent_spans();
        assert_eq!(events.len(), crate::registry::SPAN_JOURNAL_CAP);
        // Newest events survive.
        assert_eq!(events.last().unwrap().seq, 599);
    }
}

//! Named-metric registry and the `/metrics` text renderer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use plat::sync::RwLock;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::{Side, Span, SpanEvent, SpanJournal};

/// Capacity of the recent-span ring buffer.
pub(crate) const SPAN_JOURNAL_CAP: usize = 256;

/// A registered metric of any kind.
#[derive(Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Counter),
    /// Instantaneous gauge.
    Gauge(Gauge),
    /// Log-linear histogram.
    Histogram(Histogram),
}

/// A collection of named metrics plus a span journal.
///
/// Names follow `<crate>_<what>[_<unit>]` (e.g.
/// `sgxsim_ecalls_total`, `core_append_ns`); histograms carry a `_ns`
/// suffix when they record durations in nanoseconds. Handles returned
/// by the accessors are cheap clones — fetch once, bump forever.
///
/// Disabling a registry ([`Registry::set_enabled`]) makes every handle
/// it ever handed out inert; this is the "no-op registry" the CI
/// overhead gate measures against.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: RwLock<BTreeMap<String, Metric>>,
    journal: Arc<SpanJournal>,
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            metrics: RwLock::new(BTreeMap::new()),
            journal: Arc::new(SpanJournal::new(SPAN_JOURNAL_CAP)),
        }
    }

    /// Turns recording on or off for every handle from this registry.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(m) = self.metrics.read().get(name) {
            match m {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric {name} is not a counter"),
            }
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::gated(Arc::clone(&self.enabled))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(m) = self.metrics.read().get(name) {
            match m {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} is not a gauge"),
            }
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::gated(Arc::clone(&self.enabled))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(m) = self.metrics.read().get(name) {
            match m {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} is not a histogram"),
            }
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::gated(Arc::clone(&self.enabled))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Opens a span named `name` on `side`; its duration is recorded
    /// into the `span_<name>_ns` histogram when dropped.
    pub fn span(&self, name: &'static str, side: Side) -> Span {
        if !self.is_enabled() {
            return Span::new(name, side, None);
        }
        let hist = self.histogram(&format!("span_{name}_ns"));
        Span::new(name, side, Some((hist, Arc::clone(&self.journal))))
    }

    /// The most recent span events, oldest first.
    pub fn recent_spans(&self) -> Vec<SpanEvent> {
        self.journal.recent()
    }

    /// A point-in-time copy of every registered metric.
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        self.metrics
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every metric (and the recent span trace) as the plain
    /// text served from `/metrics`: one `name value` line per scalar,
    /// histograms expanded into `_count/_sum/_min/_p50/_p95/_p99/_max`,
    /// span-trace lines prefixed with `# span` so metric parsers skip
    /// them.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.metrics.read().iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!("{name}_count {}\n", s.count()));
                    out.push_str(&format!("{name}_sum {}\n", s.sum()));
                    out.push_str(&format!("{name}_min {}\n", s.min()));
                    out.push_str(&format!("{name}_p50 {}\n", s.percentile(0.50)));
                    out.push_str(&format!("{name}_p95 {}\n", s.percentile(0.95)));
                    out.push_str(&format!("{name}_p99 {}\n", s.percentile(0.99)));
                    out.push_str(&format!("{name}_max {}\n", s.max()));
                }
            }
        }
        let spans = self.recent_spans();
        if !spans.is_empty() {
            out.push_str("# recent spans (oldest first)\n");
            for ev in spans {
                out.push_str(&format!(
                    "# span seq={} name={} side={} duration_ns={} boundary_cycles={}\n",
                    ev.seq,
                    ev.name,
                    ev.side.as_str(),
                    ev.duration.as_nanos(),
                    ev.boundary_cycles
                ));
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.counter("a_total").inc();
        assert_eq!(r.counter("a_total").get(), 2);
    }

    #[test]
    fn disabled_registry_is_noop() {
        let r = Registry::new();
        let c = r.counter("x_total");
        r.set_enabled(false);
        c.inc();
        r.counter("x_total").inc();
        assert_eq!(c.get(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn render_text_lists_all_kinds() {
        let r = Registry::new();
        r.counter("req_total").add(3);
        r.gauge("mode").set(-1);
        r.histogram("lat_ns").record(1000);
        drop(r.span("op", Side::Enclave));
        let text = r.render_text();
        assert!(text.contains("req_total 3\n"));
        assert!(text.contains("mode -1\n"));
        assert!(text.contains("lat_ns_count 1\n"));
        assert!(text.contains("lat_ns_p95 "));
        assert!(text.contains("# span seq=0 name=op side=enclave"));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("thing");
        r.counter("thing");
    }
}

//! Lock-free metric primitives.
//!
//! Handles are cheap clones of a shared atomic core, so a metric can
//! be minted once (typically from a [`crate::Registry`]) and bumped
//! from any thread without locking. Every recording path first checks
//! a shared enable flag: a disabled registry hands out the same handle
//! types but they are inert, which is what the CI overhead gate
//! compares against.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn always_on() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(true))
}

/// A monotonically increasing event counter.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    on: Arc<AtomicBool>,
}

impl Counter {
    /// A standalone, always-enabled counter.
    pub fn new() -> Self {
        Self::gated(always_on())
    }

    pub(crate) fn gated(on: Arc<AtomicBool>) -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
            on,
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark phases).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A signed instantaneous value (queue depths, resident bytes, modes).
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    on: Arc<AtomicBool>,
}

impl Gauge {
    /// A standalone, always-enabled gauge.
    pub fn new() -> Self {
        Self::gated(always_on())
    }

    pub(crate) fn gated(on: Arc<AtomicBool>) -> Self {
        Gauge {
            value: Arc::new(AtomicI64::new(0)),
            on,
        }
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if self.on.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        if self.on.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of
/// two, bounding the relative quantile error at 1/16 (~6.25%).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Total buckets covering the full `u64` range.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for `v` in the log-linear layout: values below `SUB`
/// get exact unit buckets, larger values share an octave split into
/// `SUB` linear sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    SUB + ((msb - SUB_BITS) as usize) * SUB + sub
}

/// Inclusive upper bound of bucket `idx` (the quantile representative).
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let block = (idx - SUB) / SUB;
    let sub = (idx - SUB) % SUB;
    let bound = (((SUB + sub + 1) as u128) << block) - 1;
    bound.min(u64::MAX as u128) as u64
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-linear histogram over `u64` samples (nanoseconds by
/// convention for `*_ns` metrics). Quantiles read from a snapshot are
/// upper bounds within 1/16 relative error of the true sample.
///
/// Recording updates several atomics non-transactionally, so a
/// snapshot taken concurrently with writers may be torn by a few
/// in-flight samples; totals are never lost.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    on: Arc<AtomicBool>,
}

impl Histogram {
    /// A standalone, always-enabled histogram.
    pub fn new() -> Self {
        Self::gated(always_on())
    }

    pub(crate) fn gated(on: Arc<AtomicBool>) -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
            on,
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        if !self.on.load(Ordering::Relaxed) {
            return;
        }
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let i = &self.inner;
        let count = i.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: i.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                i.min.load(Ordering::Relaxed)
            },
            max: i.max.load(Ordering::Relaxed),
            buckets: i
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Clears every bucket and total (between benchmark phases).
    pub fn reset(&self) {
        let i = &self.inner;
        for b in &i.buckets {
            b.store(0, Ordering::Relaxed);
        }
        i.count.store(0, Ordering::Relaxed);
        i.sum.store(0, Ordering::Relaxed);
        i.min.store(u64::MAX, Ordering::Relaxed);
        i.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile `q` in `[0, 1]`: an upper bound within
    /// 1/16 relative error of the true `q`-th sample, clamped into
    /// `[min, max]`.
    ///
    /// Always returns a defined value: an empty histogram yields 0 for
    /// any `q`, out-of-range `q` is clamped, and a NaN `q` is treated
    /// as 0 (the minimum sample).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean as a [`Duration`] (samples interpreted as nanoseconds).
    pub fn mean_duration(&self) -> Duration {
        Duration::from_nanos(self.mean())
    }

    /// Quantile as a [`Duration`] (samples interpreted as nanoseconds).
    pub fn percentile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.percentile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}");
            assert!(v <= bucket_bound(idx));
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let on = Arc::new(AtomicBool::new(false));
        let c = Counter::gated(Arc::clone(&on));
        let h = Histogram::gated(Arc::clone(&on));
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        on.store(true, Ordering::Relaxed);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn empty_histogram_percentiles_are_defined() {
        let s = Histogram::new().snapshot();
        for q in [0.0, 0.5, 0.999, 1.0, -3.0, 7.0, f64::NAN] {
            assert_eq!(s.percentile(q), 0, "q={q}");
        }
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
        let e = HistogramSnapshot::empty();
        assert_eq!(e.percentile(0.99), 0);
    }

    #[test]
    fn degenerate_quantiles_are_clamped_not_undefined() {
        let h = Histogram::new();
        for v in [2u64, 4, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        // Out-of-range and NaN q stay inside [min, max].
        assert_eq!(s.percentile(-1.0), 2);
        assert_eq!(s.percentile(2.0), 8);
        assert_eq!(s.percentile(f64::NAN), 2);
    }

    #[test]
    fn gauge_negative_deltas_are_defined() {
        let g = Gauge::new();
        g.sub(5);
        assert_eq!(g.get(), -5, "a gauge may go below zero");
        g.add(-3);
        assert_eq!(g.get(), -8);
        g.set(i64::MIN);
        g.sub(0);
        assert_eq!(g.get(), i64::MIN);
        g.set(2);
        g.sub(7);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn histogram_exact_below_sub() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 3);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 5);
        assert_eq!(s.mean(), 3);
    }
}

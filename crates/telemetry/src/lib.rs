#![warn(missing_docs)]
//! Zero-dependency observability for the LibSEAL workspace.
//!
//! The paper's evaluation (§5, Figs. 5–7) is a story about where
//! cycles go — enclave transitions, log appends, invariant checks.
//! This crate is the measurement substrate: lock-free [`Counter`]s and
//! [`Gauge`]s, log-linear [`Histogram`]s with bounded-error quantiles,
//! and [`Span`]s that are *enclave-boundary aware* — each span records
//! which side of the simulated enclave it runs on and accumulates the
//! transition/handoff cycle costs charged while it is open (see
//! [`span`]). A process-wide [`global`] registry aggregates every
//! wired crate and renders a `/metrics`-style text snapshot.
//!
//! Only `libseal-plat` is used, keeping the hermetic build intact.

pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Metric, Registry};
pub use span::{charge_boundary_cycles, Side, Span, SpanEvent};

use std::sync::OnceLock;

/// The process-wide registry every wired crate reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for [`global`]`().counter(name)`.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Shorthand for [`global`]`().gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Shorthand for [`global`]`().histogram(name)`.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Shorthand for [`global`]`().span(name, side)`.
pub fn span(name: &'static str, side: Side) -> Span {
    global().span(name, side)
}

//! Histogram quantile correctness against a sorted-reference
//! implementation, and multi-thread loss-freedom for counters and
//! histograms.

use libseal_telemetry::{Counter, Histogram};

/// Nearest-rank percentile on a sorted slice (the reference).
fn reference_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

plat::prop! {
    #![cases(200)]

    // For any sample set and quantile, the histogram's answer is an
    // upper bound on the reference within the log-linear layout's
    // guaranteed 1/16 relative error.
    fn histogram_percentile_matches_sorted_reference(g) {
        let n = 1 + g.below(400) as usize;
        // Mix magnitudes so samples land across many octaves.
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let magnitude = g.below(40) as u32;
            let v = g.u64() & ((1u64 << (magnitude + 1)) - 1);
            samples.push(v);
        }
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), n as u64);
        assert_eq!(snap.min(), sorted[0]);
        assert_eq!(snap.max(), *sorted.last().unwrap());
        assert_eq!(snap.sum(), sorted.iter().copied().fold(0u64, u64::wrapping_add));
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let got = snap.percentile(q);
            let want = reference_percentile(&sorted, q);
            assert!(
                got >= want && got <= want + want / 16 + 1,
                "q={q}: got {got}, reference {want} (n={n})"
            );
        }
    }
}

#[test]
fn contention_loses_no_increments() {
    let c = Counter::new();
    let h = Histogram::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record((t as u64) * PER_THREAD + i);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(c.get(), total);
    let snap = h.snapshot();
    assert_eq!(snap.count(), total);
    assert_eq!(snap.min(), 0);
    assert_eq!(snap.max(), total - 1);
}

//! A minimal JSON value type, parser and serializer.
//!
//! ownCloud Documents synchronises edits as JSON messages and the
//! Dropbox protocol sends `commit_batch`/`list` JSON bodies (§6.1/§6.2);
//! the service-specific modules parse them with this module.

use std::collections::BTreeMap;
use std::fmt;

use crate::{ParseError, Result};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integral values serialize without a
    /// decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys (deterministic serialization).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`ParseError::Malformed`] on invalid JSON.
    pub fn parse(text: &str) -> Result<Json> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = JsonParser { chars, pos: 0 };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(ParseError::Malformed("trailing JSON content".into()));
        }
        Ok(v)
    }

    /// Parses from bytes (must be UTF-8).
    ///
    /// # Errors
    ///
    /// [`ParseError::Malformed`] on invalid UTF-8 or JSON.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json> {
        let s = std::str::from_utf8(bytes)
            .map_err(|_| ParseError::Malformed("JSON not UTF-8".into()))?;
        Json::parse(s)
    }

    /// Builds an object from pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Builds a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Number(n.into())
    }

    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (for integral numbers).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_json_string(f, s),
            Json::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::Malformed(format!(
                "expected '{c}' at position {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Json::String(self.parse_string()?)),
            Some('t') => self.parse_literal("true", Json::Bool(true)),
            Some('f') => self.parse_literal("false", Json::Bool(false)),
            Some('n') => self.parse_literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(ParseError::Malformed(format!(
                "unexpected JSON character {other:?}"
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(ParseError::Malformed(format!(
                        "expected ',' or '}}', found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(ParseError::Malformed(format!(
                        "expected ',' or ']', found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| ParseError::Malformed("unterminated string".into()))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| ParseError::Malformed("dangling escape".into()))?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek().ok_or_else(|| {
                                    ParseError::Malformed("truncated \\u escape".into())
                                })?;
                                self.pos += 1;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| {
                                        ParseError::Malformed("bad \\u escape".into())
                                    })?;
                            }
                            // Surrogate pairs: combine when present.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some('\\') {
                                    self.pos += 1;
                                    self.expect('u')?;
                                    let mut low = 0u32;
                                    for _ in 0..4 {
                                        let h = self.peek().ok_or_else(|| {
                                            ParseError::Malformed("truncated \\u escape".into())
                                        })?;
                                        self.pos += 1;
                                        low = low * 16
                                            + h.to_digit(16).ok_or_else(|| {
                                                ParseError::Malformed("bad \\u escape".into())
                                            })?;
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| {
                                ParseError::Malformed("invalid unicode escape".into())
                            })?);
                        }
                        other => {
                            return Err(ParseError::Malformed(format!("unknown escape \\{other}")))
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError::Malformed(format!("bad number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let j = Json::parse(r#"{"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn roundtrip_display_parse() {
        let j = Json::object([
            ("file", Json::str("a.txt")),
            ("size", Json::num(1234)),
            (
                "blocks",
                Json::Array(vec![Json::str("h1"), Json::str("h2")]),
            ),
            ("deleted", Json::Bool(false)),
            ("meta", Json::Null),
        ]);
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(j, back);
    }

    #[test]
    fn string_escapes() {
        let j = Json::parse(r#""line\nquote\" tab\t uA""#).unwrap();
        assert_eq!(j.as_str(), Some("line\nquote\" tab\t uA"));
        let out = Json::String("a\"b\\c\nd".into()).to_string();
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn surrogate_pairs() {
        let j = Json::parse(r#""😀""#).unwrap();
        assert_eq!(j.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "01x",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Number(5.0).to_string(), "5");
        assert_eq!(Json::Number(5.5).to_string(), "5.5");
        assert_eq!(Json::Number(-0.25).to_string(), "-0.25");
    }

    #[test]
    fn deterministic_object_order() {
        let a = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(a.to_string(), r#"{"a":2,"z":1}"#);
    }
}

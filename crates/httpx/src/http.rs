//! HTTP/1.1 request/response parsing and serialization.
//!
//! Supports `Content-Length` and chunked bodies, header iteration with
//! case-insensitive lookup, and incremental parsing from a byte buffer
//! (returning [`ParseError::Incomplete`] until a full message is
//! available) — what a TLS-terminating audit shim needs to cut message
//! boundaries out of a stream.

use crate::{ParseError, Result};

/// An ordered multimap of HTTP headers with case-insensitive lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a header.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Removes all values of `name`; returns whether any were present.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before != self.entries.len()
    }

    /// Replaces any existing values of `name` with one `value`.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.insert(name.to_string(), value);
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method (GET, POST, ...).
    pub method: String,
    /// Request target (path + query).
    pub target: String,
    /// Protocol version (e.g. "HTTP/1.1").
    pub version: String,
    /// Headers.
    pub headers: HeaderMap,
    /// Body bytes (already de-chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request with a body, setting `Content-Length`.
    pub fn new(method: &str, target: &str, body: Vec<u8>) -> Request {
        let mut headers = HeaderMap::new();
        headers.insert("Content-Length", body.len().to_string());
        Request {
            method: method.to_string(),
            target: target.to_string(),
            version: "HTTP/1.1".to_string(),
            headers,
            body,
        }
    }

    /// Path portion of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let q = self.target.split_once('?')?.1;
        q.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("{} {} {}\r\n", self.method, self.target, self.version).as_bytes(),
        );
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Protocol version.
    pub version: String,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers.
    pub headers: HeaderMap,
    /// Body bytes (already de-chunked).
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with a body, setting `Content-Length`.
    pub fn new(status: u16, body: Vec<u8>) -> Response {
        let mut headers = HeaderMap::new();
        headers.insert("Content-Length", body.len().to_string());
        Response {
            version: "HTTP/1.1".to_string(),
            status,
            reason: reason_for(status).to_string(),
            headers,
            body,
        }
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("{} {} {}\r\n", self.version, self.status, self.reason).as_bytes(),
        );
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Parser limits against hostile peers: bounds on what a single
/// message may make the server buffer before the parser gives a typed
/// rejection ([`ParseError::HeadTooLarge`] / [`TooManyHeaders`] /
/// [`BodyTooLarge`]) instead of [`ParseError::Incomplete`].
///
/// [`TooManyHeaders`]: ParseError::TooManyHeaders
/// [`BodyTooLarge`]: ParseError::BodyTooLarge
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Longest header section (start line + headers + CRLFCRLF).
    pub max_head_bytes: usize,
    /// Most header lines in one message.
    pub max_headers: usize,
    /// Largest body, declared (Content-Length) or accumulated
    /// (chunked).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 64 * 1024,
            max_headers: 128,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

impl Limits {
    /// No bounds at all: every limit error becomes `Incomplete`
    /// again. For observers of already-admitted traffic (the audit
    /// pipeline), which must parse whatever the serving edge accepted
    /// and enforce their own memory bound instead.
    pub const fn unlimited() -> Limits {
        Limits {
            max_head_bytes: usize::MAX,
            max_headers: usize::MAX,
            max_body_bytes: usize::MAX,
        }
    }
}

/// Whether `buf` holds a complete header section (the CRLFCRLF
/// delimiter has arrived). Lets servers distinguish a peer still
/// sending headers from one streaming a body, without parsing.
pub fn head_complete(buf: &[u8]) -> bool {
    find_double_crlf(buf).is_some()
}

/// Attempts to parse one request from the front of `buf`; on success
/// returns the request and the number of bytes consumed.
///
/// # Errors
///
/// [`ParseError::Incomplete`] until a full message is buffered;
/// [`ParseError::Malformed`] when the bytes can never become one.
pub fn parse_request(buf: &[u8]) -> Result<(Request, usize)> {
    parse_request_limited(buf, &Limits::default())
}

/// [`parse_request`] with explicit [`Limits`].
///
/// # Errors
///
/// As [`parse_request`], plus the typed limit rejections.
pub fn parse_request_limited(buf: &[u8], limits: &Limits) -> Result<(Request, usize)> {
    let (head_end, line, headers) = parse_head(buf, limits)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/") {
        return Err(ParseError::Malformed(format!("bad version: {version}")));
    }
    let (body, consumed) = parse_body(&headers, buf, head_end, limits)?;
    Ok((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            version: version.to_string(),
            headers,
            body,
        },
        consumed,
    ))
}

/// Attempts to parse one response from the front of `buf`.
///
/// # Errors
///
/// As [`parse_request`].
pub fn parse_response(buf: &[u8]) -> Result<(Response, usize)> {
    parse_response_limited(buf, &Limits::default())
}

/// [`parse_response`] with explicit [`Limits`].
///
/// # Errors
///
/// As [`parse_response`], plus the typed limit rejections.
pub fn parse_response_limited(buf: &[u8], limits: &Limits) -> Result<(Response, usize)> {
    let (head_end, line, headers) = parse_head(buf, limits)?;
    let mut parts = line.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing version".into()))?;
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::Malformed("missing status".into()))?;
    let reason = parts.next().unwrap_or("").to_string();
    let (body, consumed) = parse_body(&headers, buf, head_end, limits)?;
    Ok((
        Response {
            version: version.to_string(),
            status,
            reason,
            headers,
            body,
        },
        consumed,
    ))
}

/// Parses the head: returns (offset past CRLFCRLF, start line, headers).
fn parse_head(buf: &[u8], limits: &Limits) -> Result<(usize, String, HeaderMap)> {
    let Some(head_end) = find_double_crlf(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        return Err(ParseError::Incomplete);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::HeadTooLarge {
            limit: limits.max_head_bytes,
        });
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| ParseError::Malformed("empty head".into()))?
        .to_string();
    if start.is_empty() {
        return Err(ParseError::Malformed("empty start line".into()));
    }
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header line: {line}")))?;
        headers.insert(name.trim().to_string(), value.trim().to_string());
    }
    Ok((head_end + 4, start, headers))
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Extracts the body given the headers; returns (body, total consumed).
fn parse_body(
    headers: &HeaderMap,
    buf: &[u8],
    body_start: usize,
    limits: &Limits,
) -> Result<(Vec<u8>, usize)> {
    if headers
        .get("Transfer-Encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    {
        let (body, used) = decode_chunked_limited(&buf[body_start..], limits.max_body_bytes)?;
        return Ok((body, body_start + used));
    }
    let len: usize = match headers.get("Content-Length") {
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| ParseError::Malformed("bad Content-Length".into()))?,
        None => 0,
    };
    // Reject an oversized declaration before buffering a single body
    // byte: waiting for `Incomplete` to resolve would grow the
    // caller's buffer to the declared size first.
    if len > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }
    // `body_start + len` wraps for attacker-supplied lengths near
    // usize::MAX, which would turn the bounds check below into a
    // panic on slicing.
    let body_end = body_start
        .checked_add(len)
        .ok_or_else(|| ParseError::Malformed("Content-Length overflows".into()))?;
    if buf.len() < body_end {
        return Err(ParseError::Incomplete);
    }
    Ok((buf[body_start..body_end].to_vec(), body_end))
}

/// Decodes a chunked body; returns (bytes, consumed).
#[cfg(test)]
fn decode_chunked(buf: &[u8]) -> Result<(Vec<u8>, usize)> {
    decode_chunked_limited(buf, Limits::default().max_body_bytes)
}

/// Decodes a chunked body, rejecting once the accumulated output
/// would exceed `max_body`; returns (bytes, consumed).
fn decode_chunked_limited(buf: &[u8], max_body: usize) -> Result<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    loop {
        let line_end = buf[i..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or(ParseError::Incomplete)?;
        let size_line = std::str::from_utf8(&buf[i..i + line_end])
            .map_err(|_| ParseError::Malformed("chunk size not UTF-8".into()))?;
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| ParseError::Malformed(format!("bad chunk size: {size_str}")))?;
        i += line_end + 2;
        if size == 0 {
            // Trailer section: skip to final CRLF.
            if buf.len() < i + 2 {
                return Err(ParseError::Incomplete);
            }
            // Allow optional trailers ending with CRLF.
            if &buf[i..i + 2] == b"\r\n" {
                return Ok((out, i + 2));
            }
            let trailer_end = buf[i..]
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .ok_or(ParseError::Incomplete)?;
            return Ok((out, i + trailer_end + 4));
        }
        // `i + size + 2` wraps for hex chunk sizes near usize::MAX —
        // a wrapped bound passes the length check and then panics on
        // slicing. Such a chunk can never be satisfied, so it is
        // malformed rather than incomplete.
        let data_end = i
            .checked_add(size)
            .and_then(|e| e.checked_add(2))
            .ok_or_else(|| ParseError::Malformed(format!("chunk size overflows: {size_str}")))?;
        // The declared chunk sizes bound the output even before the
        // data arrives — an endless chunk stream must not keep the
        // caller buffering forever.
        if out.len().saturating_add(size) > max_body {
            return Err(ParseError::BodyTooLarge { limit: max_body });
        }
        if buf.len() < data_end {
            return Err(ParseError::Incomplete);
        }
        out.extend_from_slice(&buf[i..data_end - 2]);
        if &buf[data_end - 2..data_end] != b"\r\n" {
            return Err(ParseError::Malformed("chunk not CRLF-terminated".into()));
        }
        i = data_end;
    }
}

/// Encodes `body` with chunked transfer encoding (single chunk).
pub fn encode_chunked(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(b"\r\n0\r\n\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::new("POST", "/upload?x=1", b"hello".to_vec());
        req.headers.insert("Host", "example.com");
        let bytes = req.to_bytes();
        let (parsed, used) = parse_request(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path(), "/upload");
        assert_eq!(parsed.query_param("x"), Some("1"));
        assert_eq!(parsed.body, b"hello");
        assert_eq!(parsed.headers.get("host"), Some("example.com"));
    }

    #[test]
    fn response_roundtrip() {
        let mut rsp = Response::new(404, b"gone".to_vec());
        rsp.headers.insert("X-Test", "v");
        let bytes = rsp.to_bytes();
        let (parsed, used) = parse_response(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.status, 404);
        assert_eq!(parsed.reason, "Not Found");
        assert_eq!(parsed.body, b"gone");
    }

    #[test]
    fn incomplete_returns_incomplete() {
        let req = Request::new("GET", "/", Vec::new()).to_bytes();
        for cut in [1, 5, req.len() - 1] {
            assert_eq!(
                parse_request(&req[..cut]).unwrap_err(),
                ParseError::Incomplete,
                "cut={cut}"
            );
        }
    }

    #[test]
    fn body_split_across_reads() {
        let req = Request::new("POST", "/", vec![7u8; 100]).to_bytes();
        let head_len = req.len() - 50;
        assert_eq!(
            parse_request(&req[..head_len]).unwrap_err(),
            ParseError::Incomplete
        );
        let (parsed, _) = parse_request(&req).unwrap();
        assert_eq!(parsed.body.len(), 100);
    }

    #[test]
    fn pipelined_requests_consume_correctly() {
        let a = Request::new("GET", "/a", Vec::new()).to_bytes();
        let b = Request::new("GET", "/b", Vec::new()).to_bytes();
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (r1, used1) = parse_request(&buf).unwrap();
        assert_eq!(r1.target, "/a");
        let (r2, used2) = parse_request(&buf[used1..]).unwrap();
        assert_eq!(r2.target, "/b");
        assert_eq!(used1 + used2, buf.len());
    }

    #[test]
    fn chunked_body_decodes() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (rsp, used) = parse_response(raw).unwrap();
        assert_eq!(rsp.body, b"Wikipedia");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn chunk_size_overflow_is_malformed() {
        // usize::MAX as a hex chunk size: `i + size + 2` would wrap to a
        // small in-bounds offset and mis-frame the stream.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
ffffffffffffffff\r\nxx";
        assert!(matches!(
            parse_response(raw).unwrap_err(),
            ParseError::Malformed(_)
        ));
        // Near-overflow sizes that survive the size parse must also be
        // rejected rather than wrapping at the `+ 2` trailer.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
fffffffffffffffe\r\nxx";
        assert!(matches!(
            parse_response(raw).unwrap_err(),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn content_length_overflow_is_malformed() {
        // 2^64 - 1 parses into a usize but `body_start + len` overflows.
        // Under default limits the size cap fires first (BodyTooLarge);
        // with limits off the overflow guard must still hold.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\nx";
        assert!(matches!(
            parse_request(raw).unwrap_err(),
            ParseError::BodyTooLarge { .. }
        ));
        assert!(matches!(
            parse_request_limited(raw, &Limits::unlimited()).unwrap_err(),
            ParseError::Malformed(_)
        ));
        // A huge-but-addable length is not an overflow: without a body
        // cap the buffer is just short, so the caller keeps reading.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\nx";
        assert_eq!(
            parse_request_limited(raw, &Limits::unlimited()).unwrap_err(),
            ParseError::Incomplete
        );
    }

    #[test]
    fn chunked_encode_decode_roundtrip() {
        let body = b"some body content";
        let encoded = encode_chunked(body);
        let (decoded, used) = decode_chunked(&encoded).unwrap();
        assert_eq!(decoded, body);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn malformed_rejected() {
        assert!(matches!(
            parse_request(b"NOT VALID\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let bad_len = b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
        assert!(matches!(
            parse_request(bad_len),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn huge_headers_rejected() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'a', 70 * 1024));
        let err = parse_request(&buf).unwrap_err();
        assert!(matches!(err, ParseError::HeadTooLarge { .. }));
        assert_eq!(err.close_status(), 431);
    }

    #[test]
    fn complete_but_oversized_head_rejected() {
        // The delimiter is present, but the head itself busts the
        // limit — must still be 431, not a parse.
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut buf = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        buf.extend(std::iter::repeat_n(b'a', 128));
        buf.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(
            parse_request_limited(&buf, &limits),
            Err(ParseError::HeadTooLarge { limit: 64 })
        ));
    }

    #[test]
    fn too_many_headers_rejected() {
        let limits = Limits {
            max_headers: 4,
            ..Limits::default()
        };
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..8 {
            buf.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        buf.extend_from_slice(b"\r\n");
        let err = parse_request_limited(&buf, &limits).unwrap_err();
        assert!(matches!(err, ParseError::TooManyHeaders { limit: 4 }));
        assert_eq!(err.close_status(), 431);
        // Within the limit, the same message parses.
        let ok = Limits::default();
        assert!(parse_request_limited(&buf, &ok).is_ok());
    }

    #[test]
    fn oversized_declared_body_rejected_before_buffering() {
        let limits = Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        };
        // Only the head has arrived; the declaration alone must
        // reject, not Incomplete into an attacker-sized buffer.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n";
        let err = parse_request_limited(raw, &limits).unwrap_err();
        assert!(matches!(err, ParseError::BodyTooLarge { limit: 1024 }));
        assert_eq!(err.close_status(), 413);
    }

    #[test]
    fn oversized_chunked_body_rejected() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        assert!(matches!(
            parse_response_limited(raw, &limits),
            Err(ParseError::BodyTooLarge { limit: 8 })
        ));
    }

    #[test]
    fn head_complete_tracks_delimiter() {
        assert!(!head_complete(b"GET / HTTP/1.1\r\nHost: x\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
    }

    #[test]
    fn header_set_replaces() {
        let mut h = HeaderMap::new();
        h.insert("A", "1");
        h.insert("a", "2");
        h.set("A", "3");
        assert_eq!(h.get("a"), Some("3"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn no_body_without_length() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\nEXTRA";
        let (req, used) = parse_request(raw).unwrap();
        assert!(req.body.is_empty());
        assert_eq!(&raw[used..], b"EXTRA");
    }
}

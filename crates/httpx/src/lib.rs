#![warn(missing_docs)]
//! HTTP/1.1 parsing/serialization and a minimal JSON implementation.
//!
//! LibSEAL's service-specific modules parse the requests and responses
//! flowing through the TLS termination point (§5.1): HTTP for all three
//! evaluated services, with JSON bodies for ownCloud document sync and
//! the Dropbox metadata protocol. This crate provides both parsers
//! without external dependencies (JSON is implemented here rather than
//! pulling `serde_json`, keeping the in-enclave code self-contained).

pub mod http;
pub mod json;

pub use http::{parse_request, parse_response, HeaderMap, Request, Response};
pub use json::Json;

/// Errors from protocol parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// More bytes are needed before a full message can be parsed.
    Incomplete,
    /// The bytes cannot be a valid message.
    Malformed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Incomplete => write!(f, "incomplete message"),
            ParseError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for parser results.
pub type Result<T> = std::result::Result<T, ParseError>;

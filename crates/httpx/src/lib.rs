#![warn(missing_docs)]
//! HTTP/1.1 parsing/serialization and a minimal JSON implementation.
//!
//! LibSEAL's service-specific modules parse the requests and responses
//! flowing through the TLS termination point (§5.1): HTTP for all three
//! evaluated services, with JSON bodies for ownCloud document sync and
//! the Dropbox metadata protocol. This crate provides both parsers
//! without external dependencies (JSON is implemented here rather than
//! pulling `serde_json`, keeping the in-enclave code self-contained).

pub mod http;
pub mod json;

pub use http::{
    parse_request, parse_request_limited, parse_response, parse_response_limited, HeaderMap,
    Limits, Request, Response,
};
pub use json::Json;

/// Errors from protocol parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// More bytes are needed before a full message can be parsed.
    Incomplete,
    /// The bytes cannot be a valid message.
    Malformed(String),
    /// The header section exceeds the configured byte limit (431).
    HeadTooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// More header lines than the configured limit (431).
    TooManyHeaders {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The declared or accumulated body exceeds the byte limit (413).
    BodyTooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
}

impl ParseError {
    /// The HTTP status a server should answer with before closing the
    /// connection. [`ParseError::Incomplete`] is not an error state —
    /// callers keep reading instead — but maps to 400 for totality.
    pub fn close_status(&self) -> u16 {
        match self {
            ParseError::Incomplete | ParseError::Malformed(_) => 400,
            ParseError::HeadTooLarge { .. } | ParseError::TooManyHeaders { .. } => 431,
            ParseError::BodyTooLarge { .. } => 413,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Incomplete => write!(f, "incomplete message"),
            ParseError::Malformed(m) => write!(f, "malformed message: {m}"),
            ParseError::HeadTooLarge { limit } => {
                write!(f, "header section exceeds {limit} bytes")
            }
            ParseError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} header lines")
            }
            ParseError::BodyTooLarge { limit } => write!(f, "body exceeds {limit} bytes"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for parser results.
pub type Result<T> = std::result::Result<T, ParseError>;

//! Property-based tests for HTTP and JSON parsing.

use libseal_httpx::http::{parse_request, parse_response, Request, Response};
use libseal_httpx::json::Json;
use libseal_httpx::ParseError;
use proptest::prelude::*;

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn request_roundtrips(
        method in "(GET|POST|PUT|DELETE)",
        path in "/[a-z0-9/]{0,20}",
        headers in proptest::collection::vec((token(), "[ -~&&[^\r\n]]{0,20}"), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut req = Request::new(&method, &path, body.clone());
        for (n, v) in &headers {
            req.headers.insert(n.clone(), v.trim().to_string());
        }
        let bytes = req.to_bytes();
        let (parsed, used) = parse_request(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.body, body);
        for (n, v) in &headers {
            prop_assert_eq!(parsed.headers.get(n).unwrap(), v.trim());
        }
    }

    #[test]
    fn response_roundtrips(
        status in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let rsp = Response::new(status, body.clone());
        let bytes = rsp.to_bytes();
        let (parsed, used) = parse_response(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn truncation_is_incomplete_never_wrong(
        body in proptest::collection::vec(any::<u8>(), 0..200),
        cut_ratio in 0.0f64..1.0,
    ) {
        let req = Request::new("POST", "/x", body);
        let bytes = req.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_ratio) as usize;
        match parse_request(&bytes[..cut]) {
            Err(ParseError::Incomplete) => {}
            Ok((parsed, used)) => {
                // A prefix that parses must be a strictly valid message
                // (possible when the body is truncated at its declared
                // length boundary — but then used <= cut).
                prop_assert!(used <= cut);
                prop_assert_eq!(parsed.method, "POST");
            }
            Err(ParseError::Malformed(_)) => prop_assert!(false, "prefix misparsed"),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = parse_request(&bytes);
        let _ = parse_response(&bytes);
        let _ = Json::parse_bytes(&bytes);
    }

    #[test]
    fn json_roundtrips_nested(
        pairs in proptest::collection::btree_map(
            "[a-z]{1,8}",
            prop_oneof![
                any::<i32>().prop_map(|n| Json::Number(n as f64)),
                any::<bool>().prop_map(Json::Bool),
                "[ -~&&[^\"\\\\]]{0,16}".prop_map(Json::String),
                Just(Json::Null),
            ],
            0..8,
        ),
    ) {
        let obj = Json::Object(pairs.into_iter().collect());
        let text = obj.to_string();
        prop_assert_eq!(Json::parse(&text).unwrap(), obj);
    }

    #[test]
    fn json_strings_with_any_unicode(s in "\\PC{0,40}") {
        let j = Json::String(s.clone());
        let parsed = Json::parse(&j.to_string()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }
}

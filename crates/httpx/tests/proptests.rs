//! Property-based tests for HTTP and JSON parsing (deterministic
//! `plat::check` harness; same properties and case counts as the
//! original proptest suite).

use libseal_httpx::http::{parse_request, parse_response, Request, Response};
use libseal_httpx::json::Json;
use libseal_httpx::ParseError;
use plat::check::Gen;

/// An HTTP header token: `[A-Za-z][A-Za-z0-9-]{0,12}`.
fn token(g: &mut Gen) -> String {
    let first: Vec<u8> = (b'A'..=b'Z').chain(b'a'..=b'z').collect();
    let rest: Vec<u8> = (b'A'..=b'Z')
        .chain(b'a'..=b'z')
        .chain(b'0'..=b'9')
        .chain([b'-'])
        .collect();
    let mut s = String::new();
    s.push(*g.pick(&first) as char);
    s.push_str(&g.ascii_string(&rest, 0..13));
    s
}

plat::prop! {
    #![cases(48)]

    fn request_roundtrips(g) {
        let method = g.pick(&["GET", "POST", "PUT", "DELETE"]).to_string();
        let path = {
            let charset: Vec<u8> = (b'a'..=b'z').chain(b'0'..=b'9').chain([b'/']).collect();
            format!("/{}", g.ascii_string(&charset, 0..21))
        };
        let headers: Vec<(String, String)> = (0..g.usize_in(0..6))
            .map(|_| {
                let v = g.printable_ascii_except(b"\r\n", 0..21);
                (token(g), v)
            })
            .collect();
        let body = g.bytes(0..300);
        let mut req = Request::new(&method, &path, body.clone());
        for (n, v) in &headers {
            req.headers.insert(n.clone(), v.trim().to_string());
        }
        let bytes = req.to_bytes();
        let (parsed, used) = parse_request(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.method, method);
        assert_eq!(parsed.body, body);
        for (n, v) in &headers {
            assert_eq!(parsed.headers.get(n).unwrap(), v.trim());
        }
    }

    fn response_roundtrips(g) {
        let status = g.u16_in(100..600);
        let body = g.bytes(0..300);
        let rsp = Response::new(status, body.clone());
        let bytes = rsp.to_bytes();
        let (parsed, used) = parse_response(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.status, status);
        assert_eq!(parsed.body, body);
    }

    fn truncation_is_incomplete_never_wrong(g) {
        let body = g.bytes(0..200);
        let cut_ratio = g.f64_in(0.0, 1.0);
        let req = Request::new("POST", "/x", body);
        let bytes = req.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_ratio) as usize;
        match parse_request(&bytes[..cut]) {
            Err(ParseError::Incomplete) => {}
            Ok((parsed, used)) => {
                // A prefix that parses must be a strictly valid message
                // (possible when the body is truncated at its declared
                // length boundary — but then used <= cut).
                assert!(used <= cut);
                assert_eq!(parsed.method, "POST");
            }
            Err(e) => panic!("prefix misparsed: {e}"),
        }
    }

    fn arbitrary_bytes_never_panic(g) {
        let bytes = g.bytes(0..400);
        let _ = parse_request(&bytes);
        let _ = parse_response(&bytes);
        let _ = Json::parse_bytes(&bytes);
    }

    fn json_roundtrips_nested(g) {
        let pairs: std::collections::BTreeMap<String, Json> = (0..g.usize_in(0..8))
            .map(|_| {
                let key = g.lowercase(1..9);
                let value = match g.usize_in(0..4) {
                    0 => Json::Number(g.u32() as i32 as f64),
                    1 => Json::Bool(g.bool()),
                    2 => Json::String(g.printable_ascii_except(b"\"\\", 0..17)),
                    _ => Json::Null,
                };
                (key, value)
            })
            .collect();
        let obj = Json::Object(pairs.into_iter().collect());
        let text = obj.to_string();
        assert_eq!(Json::parse(&text).unwrap(), obj);
    }

    fn json_strings_with_any_unicode(g) {
        let s = g.unicode_string(0..41);
        let j = Json::String(s.clone());
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s.as_str()));
    }
}

//! Stress tests for the coroutine and async-call runtime: many tasks,
//! deep interleavings, shutdown under load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use libseal_lthread::{AsyncRuntime, Coroutine, Resume, RuntimeConfig, WaitMode};
use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;

#[test]
fn hundred_coroutines_with_interleaved_yields() {
    const N: usize = 100;
    const ROUNDS: u64 = 25;
    let counter = Arc::new(AtomicU64::new(0));
    let mut coros: Vec<Coroutine> = (0..N)
        .map(|_| {
            let c = Arc::clone(&counter);
            Coroutine::new(32 * 1024, move |y| {
                for _ in 0..ROUNDS {
                    c.fetch_add(1, Ordering::Relaxed);
                    y.yield_now();
                }
            })
        })
        .collect();
    let mut done = 0;
    while done < N {
        done = 0;
        for co in coros.iter_mut() {
            if co.is_finished() || co.resume() == Resume::Finished {
                done += 1;
            }
        }
    }
    assert_eq!(counter.load(Ordering::Relaxed), (N as u64) * ROUNDS);
}

#[test]
fn coroutine_stack_isolation() {
    // Each coroutine fills a large local buffer with its own pattern
    // and verifies it after other coroutines have run: stacks must not
    // bleed into each other.
    const N: usize = 16;
    let ok = Arc::new(AtomicU64::new(0));
    let mut coros: Vec<Coroutine> = (0..N)
        .map(|i| {
            let ok = Arc::clone(&ok);
            Coroutine::new(64 * 1024, move |y| {
                let pattern = i as u8;
                let mut buf = [0u8; 8 * 1024];
                for b in buf.iter_mut() {
                    *b = pattern;
                }
                y.yield_now();
                // After every other coroutine ran, the stack must be
                // intact.
                if buf.iter().all(|b| *b == pattern) {
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for co in coros.iter_mut() {
        assert_eq!(co.resume(), Resume::Yielded);
    }
    for co in coros.iter_mut() {
        assert_eq!(co.resume(), Resume::Finished);
    }
    assert_eq!(ok.load(Ordering::Relaxed), N as u64);
}

#[test]
fn runtime_survives_rapid_start_shutdown() {
    for round in 0..5 {
        let enclave = Arc::new(
            EnclaveBuilder::new(b"stress")
                .cost_model(CostModel::free())
                .tcs_count(8)
                .build(|_| ()),
        );
        let rt = AsyncRuntime::start(
            enclave,
            RuntimeConfig {
                sgx_threads: 2,
                lthreads_per_thread: 4,
                slots: 2,
                stack_size: 64 * 1024,
                wait_mode: if round % 2 == 0 {
                    WaitMode::BusyWait
                } else {
                    WaitMode::Poller
                },
            },
        )
        .unwrap();
        for i in 0..20u64 {
            let out = rt.async_ecall((i % 2) as usize, move |_, _, _| i * 2);
            assert_eq!(out, i * 2);
        }
        rt.shutdown();
    }
}

#[test]
fn heavy_ocall_chatter() {
    let enclave = Arc::new(
        EnclaveBuilder::new(b"chatter")
            .cost_model(CostModel::free())
            .tcs_count(8)
            .build(|_| ()),
    );
    let rt = AsyncRuntime::start(
        enclave,
        RuntimeConfig {
            sgx_threads: 2,
            lthreads_per_thread: 8,
            slots: 4,
            stack_size: 64 * 1024,
            wait_mode: WaitMode::BusyWait,
        },
    )
    .unwrap();
    let rt = Arc::new(rt);
    let mut handles = Vec::new();
    for slot in 0..4usize {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                let total = rt.async_ecall(slot, move |_, _, port| {
                    let mut acc = 0u64;
                    for k in 0..8u64 {
                        acc += port.ocall("chat", move || i + k);
                    }
                    acc
                });
                assert_eq!(total, 8 * i + 28);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = rt.enclave().services().stats().snapshot();
    assert_eq!(snap.async_ocalls, 4 * 30 * 8);
}

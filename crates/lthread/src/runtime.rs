//! The asynchronous enclave call runtime (§4.3, Fig. 3).
//!
//! `S` SGX worker threads permanently reside inside the enclave, each
//! running `T` lthread tasks; `A` application threads communicate with
//! them through per-thread request slots. Application threads either
//! busy-wait on their slot or park and get woken by one dedicated
//! polling thread (the paper found the dedicated poller faster; both
//! are implemented so §6.8 can compare).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use libseal_sgxsim::enclave::{Enclave, EnclaveServices};
use libseal_sgxsim::Result;

use crate::coro::Coroutine;
use crate::slots::{EcallFn, OcallPort, Slot};

/// How application threads wait for async-call completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitMode {
    /// Every application thread spins on its own slot.
    BusyWait,
    /// Application threads park; a dedicated polling thread wakes them.
    Poller,
}

/// Configuration of the async runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of SGX worker threads resident in the enclave (`S`).
    pub sgx_threads: usize,
    /// Number of lthread tasks per SGX thread (`T`).
    pub lthreads_per_thread: usize,
    /// Number of application slots (`A`, one per application thread).
    pub slots: usize,
    /// Stack size for each lthread task.
    pub stack_size: usize,
    /// Wait strategy for application threads.
    pub wait_mode: WaitMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            sgx_threads: 3,
            lthreads_per_thread: 48,
            slots: 16,
            stack_size: 256 * 1024,
            wait_mode: WaitMode::Poller,
        }
    }
}

struct RuntimeInner<T: Send + Sync + 'static> {
    enclave: Arc<Enclave<T>>,
    slots: Vec<Slot<T>>,
    shutdown: AtomicBool,
    wait_mode: WaitMode,
}

/// The asynchronous enclave call runtime.
pub struct AsyncRuntime<T: Send + Sync + 'static> {
    inner: Arc<RuntimeInner<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    poller: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + Sync + 'static> AsyncRuntime<T> {
    /// Starts worker threads (and the poller, if configured) for
    /// `enclave`.
    ///
    /// # Errors
    ///
    /// Fails if the enclave cannot admit `sgx_threads` persistent
    /// threads (TCS exhaustion).
    pub fn start(enclave: Arc<Enclave<T>>, config: RuntimeConfig) -> Result<Self> {
        let inner = Arc::new(RuntimeInner {
            enclave,
            slots: (0..config.slots).map(|_| Slot::default()).collect(),
            shutdown: AtomicBool::new(false),
            wait_mode: config.wait_mode,
        });

        let mut workers = Vec::with_capacity(config.sgx_threads);
        for worker_idx in 0..config.sgx_threads {
            let inner = Arc::clone(&inner);
            let lthreads = config.lthreads_per_thread;
            let stack = config.stack_size;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sgx-worker-{worker_idx}"))
                    .spawn(move || worker_loop(inner, lthreads, stack))
                    .expect("spawn sgx worker"),
            );
        }

        let poller = if config.wait_mode == WaitMode::Poller {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("slot-poller".to_string())
                    .spawn(move || poller_loop(inner))
                    .expect("spawn poller"),
            )
        } else {
            None
        };

        Ok(AsyncRuntime {
            inner,
            workers,
            poller,
        })
    }

    /// Executes `f` inside the enclave as an asynchronous ecall from
    /// the application thread owning `slot_idx`.
    ///
    /// Any ocalls `f` performs through its [`OcallPort`] run on this
    /// thread, per the paper's slot-affinity rule.
    ///
    /// # Panics
    ///
    /// Panics if `slot_idx` is out of range or concurrently used by
    /// another application thread.
    pub fn async_ecall<R: Send + 'static>(
        &self,
        slot_idx: usize,
        f: impl for<'p> FnOnce(&T, &EnclaveServices, &OcallPort<'p, T>) -> R + Send,
    ) -> R {
        let slot = &self.inner.slots[slot_idx];
        assert!(
            slot.occupied
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            "slot {slot_idx} already in use by another application thread"
        );

        let result: Arc<plat::sync::Mutex<Option<R>>> = Arc::new(plat::sync::Mutex::new(None));
        let result2 = Arc::clone(&result);
        // Spelled out (not the `EcallFn` alias) to pin down the exact
        // pre-transmute type the SAFETY argument below relies on.
        #[allow(clippy::type_complexity)]
        let boxed: Box<dyn for<'p> FnOnce(&T, &EnclaveServices, &OcallPort<'p, T>) + Send> =
            Box::new(move |state, sv, port| {
                *result2.lock() = Some(f(state, sv, port));
            });
        // SAFETY: we block below until `ecall_done`, so the non-'static
        // captures of `f` outlive the enclave's use of the closure.
        let boxed: EcallFn<T> = unsafe { std::mem::transmute(boxed) };

        *slot.ecall_req.lock() = Some(boxed);
        slot.ecall_done.store(false, Ordering::Release);
        slot.ecall_pending.store(true, Ordering::Release);

        // Wait, serving our own ocalls as they appear.
        loop {
            if slot
                .ocall_pending
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let req = slot.ocall_req.lock().take();
                if let Some(req) = req {
                    req();
                }
                slot.ocall_done.store(true, Ordering::Release);
                continue;
            }
            if slot.ecall_done.load(Ordering::Acquire) {
                slot.ecall_done.store(false, Ordering::Release);
                break;
            }
            match self.inner.wait_mode {
                // Yield so enclave workers can run even on a single
                // core; pure spinning would starve them for a whole
                // scheduler timeslice.
                WaitMode::BusyWait => std::thread::yield_now(),
                WaitMode::Poller => {
                    *slot.waiter.lock() = Some(std::thread::current());
                    // Re-check to close the race with the poller.
                    if !slot.needs_app_thread() {
                        std::thread::park_timeout(std::time::Duration::from_micros(200));
                    }
                    slot.waiter.lock().take();
                }
            }
        }

        slot.occupied.store(false, Ordering::Release);
        let out = result.lock().take();
        out.expect("ecall result present after ecall_done")
    }

    /// Executes `f` as a classic synchronous ecall (full transition
    /// cost); the "without async calls" baseline of Tab. 2.
    ///
    /// # Errors
    ///
    /// Propagates TCS exhaustion from the enclave.
    pub fn sync_ecall<R>(
        &self,
        name: &'static str,
        f: impl FnOnce(&T, &EnclaveServices) -> R,
    ) -> Result<R> {
        self.inner.enclave.ecall(name, f)
    }

    /// The underlying enclave.
    pub fn enclave(&self) -> &Arc<Enclave<T>> {
        &self.inner.enclave
    }

    /// Number of application slots.
    pub fn slot_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Stops workers and the poller, waiting for them to exit.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
    }
}

impl<T: Send + Sync + 'static> Drop for AsyncRuntime<T> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
    }
}

fn worker_loop<T: Send + Sync + 'static>(
    inner: Arc<RuntimeInner<T>>,
    lthreads: usize,
    stack_size: usize,
) {
    // Enter the enclave once and stay: TCS slot held for the runtime's
    // lifetime, so async calls pay no transitions.
    let entry = match inner.enclave.enter_persistent() {
        Ok(e) => e,
        Err(_) => return,
    };
    let _ = &entry;

    let mut tasks: Vec<Coroutine> = (0..lthreads)
        .map(|_| {
            let inner = Arc::clone(&inner);
            Coroutine::new(stack_size, move |yielder| {
                // The lthread task: claim pending ecalls from any slot.
                loop {
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let mut did_work = false;
                    for slot in inner.slots.iter() {
                        if let Some(req) = slot.try_claim_ecall() {
                            inner.enclave.async_call(|state, sv| {
                                let port = OcallPort {
                                    slot,
                                    yielder,
                                    services: sv,
                                };
                                req(state, sv, &port);
                            });
                            slot.ecall_done.store(true, Ordering::Release);
                            if let Some(w) = slot.waiter.lock().take() {
                                w.unpark();
                            }
                            did_work = true;
                        }
                    }
                    if !did_work {
                        yielder.yield_now();
                    }
                }
            })
        })
        .collect();

    // Round-robin lthread scheduler.
    loop {
        let mut alive = false;
        for task in tasks.iter_mut() {
            if !task.is_finished() {
                alive = true;
                let _ = task.resume();
            }
        }
        if !alive {
            break;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            // Keep resuming until every task observes shutdown and
            // finishes; they need resumes to exit their loops.
            let all_done = tasks.iter().all(|t| t.is_finished());
            if all_done {
                break;
            }
        } else {
            std::thread::yield_now();
        }
    }
    drop(tasks);
    drop(entry);
}

fn poller_loop<T: Send + Sync + 'static>(inner: Arc<RuntimeInner<T>>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        for slot in inner.slots.iter() {
            if slot.needs_app_thread() {
                if let Some(w) = slot.waiter.lock().take() {
                    w.unpark();
                }
            }
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libseal_sgxsim::cost::CostModel;
    use libseal_sgxsim::enclave::EnclaveBuilder;
    use plat::sync::Mutex;

    fn runtime(mode: WaitMode) -> AsyncRuntime<Mutex<Vec<u64>>> {
        let enclave = Arc::new(
            EnclaveBuilder::new(b"rt-test")
                .cost_model(CostModel::free())
                .tcs_count(8)
                .build(|_| Mutex::new(Vec::new())),
        );
        AsyncRuntime::start(
            enclave,
            RuntimeConfig {
                sgx_threads: 2,
                lthreads_per_thread: 4,
                slots: 4,
                stack_size: 128 * 1024,
                wait_mode: mode,
            },
        )
        .unwrap()
    }

    #[test]
    fn async_ecall_returns_result() {
        for mode in [WaitMode::BusyWait, WaitMode::Poller] {
            let rt = runtime(mode);
            let out = rt.async_ecall(0, |state, _, _| {
                state.lock().push(42);
                "done".to_string()
            });
            assert_eq!(out, "done");
            let len = rt.async_ecall(0, |state, _, _| state.lock().len());
            assert_eq!(len, 1);
            rt.shutdown();
        }
    }

    #[test]
    fn ocall_executes_on_app_thread() {
        let rt = runtime(WaitMode::BusyWait);
        let app_thread = std::thread::current().id();
        let observed = rt.async_ecall(0, move |_, _, port| {
            port.ocall("probe", move || std::thread::current().id())
        });
        assert_eq!(observed, app_thread);
        rt.shutdown();
    }

    #[test]
    fn nested_ocalls_roundtrip() {
        let rt = runtime(WaitMode::BusyWait);
        let sum = rt.async_ecall(1, |_, _, port| {
            let a: u64 = port.ocall("read", || 10);
            let b: u64 = port.ocall("read", || 32);
            a + b
        });
        assert_eq!(sum, 42);
        rt.shutdown();
    }

    #[test]
    fn concurrent_app_threads() {
        let rt = Arc::new(runtime(WaitMode::BusyWait));
        let mut handles = Vec::new();
        for slot in 0..4 {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let v = rt.async_ecall(slot, move |state, _, port| {
                        state.lock().push(i);
                        port.ocall("echo", move || i * 2)
                    });
                    assert_eq!(v, i * 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = rt.async_ecall(0, |state, _, _| state.lock().len());
        assert_eq!(total, 200);
        match Arc::try_unwrap(rt) {
            Ok(rt) => rt.shutdown(),
            Err(_) => panic!("runtime still shared"),
        }
    }

    #[test]
    fn stats_record_async_calls() {
        let rt = runtime(WaitMode::BusyWait);
        rt.async_ecall(0, |_, _, port| {
            port.ocall("x", || ());
        });
        let snap = rt.enclave().services().stats().snapshot();
        assert_eq!(snap.async_ecalls, 1);
        assert_eq!(snap.async_ocalls, 1);
        assert_eq!(snap.ecalls, 0, "no sync transitions on the async path");
        rt.shutdown();
    }

    #[test]
    fn sync_path_still_available() {
        let rt = runtime(WaitMode::BusyWait);
        let n = rt
            .sync_ecall("probe", |state, _| state.lock().len())
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(rt.enclave().services().stats().snapshot().ecalls, 1);
        rt.shutdown();
    }

    #[test]
    fn borrowed_captures_work() {
        // The ecall closure may borrow stack data of the app thread.
        let rt = runtime(WaitMode::BusyWait);
        let local = vec![1u64, 2, 3];
        let local_ref = &local;
        let sum = rt.async_ecall(0, move |_, _, _| local_ref.iter().sum::<u64>());
        assert_eq!(sum, 6);
        rt.shutdown();
    }
}

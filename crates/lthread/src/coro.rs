//! Stackful user-level coroutines (the `lthread` tasks of §4.3).
//!
//! Two interchangeable backends provide the same API:
//!
//! - the default x86-64 backend switches stacks in user space with a
//!   handful of assembly instructions (see [`crate::context`]) — this
//!   is what makes async enclave calls cheap;
//! - the `portable-lthreads` feature (or a non-x86-64 target) maps each
//!   coroutine onto a parked OS thread. Functionally identical, but
//!   resume/yield costs a scheduler round-trip, so benchmarks should
//!   use the native backend.

/// Outcome of resuming a coroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// The coroutine yielded and can be resumed again.
    Yielded,
    /// The coroutine body returned; it must not be resumed again.
    Finished,
}

/// Handle passed to coroutine bodies for cooperative yielding.
pub struct Yielder {
    #[cfg(all(target_arch = "x86_64", not(feature = "portable-lthreads")))]
    inner: *mut native::CoroShared,
    #[cfg(any(not(target_arch = "x86_64"), feature = "portable-lthreads"))]
    inner: std::sync::Arc<portable::Shared>,
}

impl Yielder {
    /// Suspends the coroutine, returning control to whoever resumed it.
    pub fn yield_now(&self) {
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-lthreads")))]
        // SAFETY: `inner` points into the Coroutine that is currently
        // running us; it cannot be dropped while we are suspended
        // because dropping a live coroutine aborts (see Drop).
        unsafe {
            native::yield_from(self.inner)
        };
        #[cfg(any(not(target_arch = "x86_64"), feature = "portable-lthreads"))]
        portable::yield_from(&self.inner);
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "portable-lthreads")))]
pub use native::Coroutine;

#[cfg(all(target_arch = "x86_64", not(feature = "portable-lthreads")))]
mod native {
    use super::{Resume, Yielder};
    use crate::context::{lthread_ctx_switch, prepare_stack, EntryCell};

    /// Shared mutable state between a coroutine and its resumer.
    pub(super) struct CoroShared {
        /// The coroutine's saved stack pointer while suspended.
        task_rsp: u64,
        /// The entry cell; `return_rsp` doubles as the resumer context.
        cell: EntryCell,
        finished: bool,
    }

    /// A stackful coroutine with its own stack.
    pub struct Coroutine {
        shared: Box<CoroShared>,
        // Keep the stack alive and pinned for the coroutine's lifetime.
        _stack: Box<[u8]>,
        started: bool,
    }

    // SAFETY: A suspended coroutine is just memory (a stack plus saved
    // registers); it is safe to move the handle between threads as long
    // as only one thread resumes it at a time, which `&mut self`
    // enforces.
    unsafe impl Send for Coroutine {}

    impl Coroutine {
        /// Creates a coroutine running `body` on a fresh stack of
        /// `stack_size` bytes (rounded up to 4 KiB, minimum 16 KiB).
        pub fn new(stack_size: usize, body: impl FnOnce(&Yielder) + Send + 'static) -> Self {
            let stack_size = stack_size.max(16 * 1024).next_multiple_of(4096);
            let mut stack = vec![0u8; stack_size].into_boxed_slice();
            let mut shared = Box::new(CoroShared {
                task_rsp: 0,
                cell: EntryCell {
                    body: None,
                    return_rsp: 0,
                },
                finished: false,
            });
            let shared_ptr: *mut CoroShared = &mut *shared;
            // The body wrapper owns the Yielder construction and marks
            // completion.
            let wrapped = Box::new(move || {
                let yielder = Yielder { inner: shared_ptr };
                body(&yielder);
                // SAFETY: the shared cell outlives the coroutine body.
                unsafe { (*shared_ptr).finished = true };
            });
            shared.cell.body = Some(wrapped);
            // SAFETY: `shared.cell` is heap-pinned by the Box and the
            // stack lives as long as the Coroutine.
            let task_rsp = unsafe { prepare_stack(&mut stack, &mut shared.cell) };
            shared.task_rsp = task_rsp;
            Coroutine {
                shared,
                _stack: stack,
                started: false,
            }
        }

        /// Resumes the coroutine until it yields or finishes.
        ///
        /// # Panics
        ///
        /// Panics if called after the coroutine finished.
        pub fn resume(&mut self) -> Resume {
            assert!(!self.shared.finished, "resume on finished coroutine");
            self.started = true;
            let shared: *mut CoroShared = &mut *self.shared;
            // SAFETY: shared is valid; the switch saves our context in
            // cell.return_rsp and activates the task's stack. The task
            // switches back via `yield_from` or the trampoline exit,
            // restoring us here.
            unsafe {
                let target = (*shared).task_rsp;
                lthread_ctx_switch(&mut (*shared).cell.return_rsp, target);
            }
            if self.shared.finished {
                Resume::Finished
            } else {
                Resume::Yielded
            }
        }

        /// Whether the coroutine has run to completion.
        pub fn is_finished(&self) -> bool {
            self.shared.finished
        }
    }

    impl Drop for Coroutine {
        fn drop(&mut self) {
            if self.started && !self.shared.finished {
                // Dropping a suspended coroutine would leak whatever its
                // stack owns and dangle the Yielder; treat as fatal.
                eprintln!("lthread: dropped a live coroutine; aborting");
                std::process::abort();
            }
        }
    }

    /// Switches from the running coroutine back to its resumer.
    ///
    /// # Safety
    ///
    /// Must be called from within the coroutine that `shared` belongs
    /// to.
    pub(super) unsafe fn yield_from(shared: *mut CoroShared) {
        // SAFETY: Caller contract: we are executing on the coroutine's
        // stack right now, so saving into task_rsp and jumping to the
        // resumer's rsp is the inverse of `resume`.
        unsafe {
            let ret = (*shared).cell.return_rsp;
            lthread_ctx_switch(&mut (*shared).task_rsp, ret);
        }
    }
}

#[cfg(any(not(target_arch = "x86_64"), feature = "portable-lthreads"))]
pub use portable::Coroutine;

#[cfg(any(not(target_arch = "x86_64"), feature = "portable-lthreads"))]
mod portable {
    use super::{Resume, Yielder};
    use std::sync::{Arc, Condvar, Mutex};

    #[derive(PartialEq, Clone, Copy)]
    enum Turn {
        Resumer,
        Task,
    }

    pub(super) struct Shared {
        turn: Mutex<Turn>,
        cv: Condvar,
        finished: Mutex<bool>,
    }

    /// Thread-backed coroutine: functionally identical, slower.
    pub struct Coroutine {
        shared: Arc<Shared>,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl Coroutine {
        /// Creates a coroutine running `body` on a dedicated thread.
        pub fn new(_stack_size: usize, body: impl FnOnce(&Yielder) + Send + 'static) -> Self {
            let shared = Arc::new(Shared {
                turn: Mutex::new(Turn::Resumer),
                cv: Condvar::new(),
                finished: Mutex::new(false),
            });
            let s2 = Arc::clone(&shared);
            let handle = std::thread::spawn(move || {
                // Wait for the first resume.
                {
                    let mut turn = s2.turn.lock().unwrap();
                    while *turn != Turn::Task {
                        turn = s2.cv.wait(turn).unwrap();
                    }
                }
                let yielder = Yielder {
                    inner: Arc::clone(&s2),
                };
                body(&yielder);
                *s2.finished.lock().unwrap() = true;
                let mut turn = s2.turn.lock().unwrap();
                *turn = Turn::Resumer;
                s2.cv.notify_all();
            });
            Coroutine {
                shared,
                handle: Some(handle),
            }
        }

        /// Resumes the coroutine until it yields or finishes.
        pub fn resume(&mut self) -> Resume {
            assert!(!self.is_finished(), "resume on finished coroutine");
            {
                let mut turn = self.shared.turn.lock().unwrap();
                *turn = Turn::Task;
                self.shared.cv.notify_all();
                while *turn != Turn::Resumer {
                    turn = self.shared.cv.wait(turn).unwrap();
                }
            }
            if self.is_finished() {
                if let Some(h) = self.handle.take() {
                    let _ = h.join();
                }
                Resume::Finished
            } else {
                Resume::Yielded
            }
        }

        /// Whether the coroutine has run to completion.
        pub fn is_finished(&self) -> bool {
            *self.shared.finished.lock().unwrap()
        }
    }

    pub(super) fn yield_from(shared: &Arc<Shared>) {
        let mut turn = shared.turn.lock().unwrap();
        *turn = Turn::Resumer;
        shared.cv.notify_all();
        while *turn != Turn::Task {
            turn = shared.cv.wait(turn).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_to_completion() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let mut c = Coroutine::new(64 * 1024, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(c.resume(), Resume::Finished);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(c.is_finished());
    }

    #[test]
    fn yields_and_resumes() {
        let trace = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&trace);
        let mut c = Coroutine::new(64 * 1024, move |y| {
            t.store(1, Ordering::SeqCst);
            y.yield_now();
            t.store(2, Ordering::SeqCst);
            y.yield_now();
            t.store(3, Ordering::SeqCst);
        });
        assert_eq!(c.resume(), Resume::Yielded);
        assert_eq!(trace.load(Ordering::SeqCst), 1);
        assert_eq!(c.resume(), Resume::Yielded);
        assert_eq!(trace.load(Ordering::SeqCst), 2);
        assert_eq!(c.resume(), Resume::Finished);
        assert_eq!(trace.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn many_coroutines_interleave() {
        const N: usize = 8;
        let counter = Arc::new(AtomicU64::new(0));
        let mut coros: Vec<Coroutine> = (0..N)
            .map(|_| {
                let c = Arc::clone(&counter);
                Coroutine::new(64 * 1024, move |y| {
                    for _ in 0..10 {
                        c.fetch_add(1, Ordering::SeqCst);
                        y.yield_now();
                    }
                })
            })
            .collect();
        let mut finished = 0;
        while finished < N {
            finished = 0;
            for c in coros.iter_mut() {
                if c.is_finished() || c.resume() == Resume::Finished {
                    finished += 1;
                }
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), (N * 10) as u64);
    }

    #[test]
    fn deep_stack_usage() {
        // Recursion that needs a real stack, exercising the allocation.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let out = Arc::new(AtomicU64::new(0));
        let o = Arc::clone(&out);
        let mut c = Coroutine::new(256 * 1024, move |y| {
            let v = fib(20);
            y.yield_now();
            o.store(v, Ordering::SeqCst);
        });
        assert_eq!(c.resume(), Resume::Yielded);
        assert_eq!(c.resume(), Resume::Finished);
        assert_eq!(out.load(Ordering::SeqCst), 6765);
    }

    #[test]
    fn coroutine_moves_between_threads() {
        let mut c = Coroutine::new(64 * 1024, move |y| {
            y.yield_now();
        });
        assert_eq!(c.resume(), Resume::Yielded);
        // Resume on a different thread.
        let handle = std::thread::spawn(move || {
            let mut c = c;
            c.resume()
        });
        assert_eq!(handle.join().unwrap(), Resume::Finished);
    }
}

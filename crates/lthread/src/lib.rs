#![warn(missing_docs)]
//! User-level threading and asynchronous enclave calls for LibSEAL.
//!
//! Enclave transitions are expensive (§4.2: ~8,400 cycles each, worse
//! under contention). LibSEAL therefore executes ecalls and ocalls
//! *asynchronously* (§4.3): application threads write call requests
//! into shared slots, and user-level `lthread` tasks running on a small
//! number of permanently-resident enclave threads pick them up. This
//! crate reproduces that machinery:
//!
//! - [`coro`]: stackful coroutines with an x86-64 assembly context
//!   switch (a thread-backed portable fallback is selected by the
//!   `portable-lthreads` feature or on other architectures);
//! - [`slots`]: the per-application-thread request slots of Fig. 4;
//! - [`runtime`]: the `S × T` worker/task topology of Fig. 3, with
//!   busy-wait and dedicated-poller wait modes;
//! - [`pool`]: an M:N job pool (coroutines over carrier threads) the
//!   event-driven serve loops run application handlers on.

pub mod context;
pub mod coro;
pub mod pool;
pub mod runtime;
pub mod slots;

pub use coro::{Coroutine, Resume, Yielder};
pub use pool::{JobPool, PoolConfig};
pub use runtime::{AsyncRuntime, RuntimeConfig, WaitMode};
pub use slots::OcallPort;

//! An M:N job pool built on lthread coroutines (§4.3 applied to the
//! service layer).
//!
//! The event-driven serve loops keep exactly one reactor thread; the
//! application handlers (and, with auditing, the group-commit barrier
//! inside `ssl_write`) run here instead. A [`JobPool`] multiplexes
//! many lthread coroutines over a few *carrier* OS threads: each
//! coroutine pulls jobs from a shared queue, runs them, and yields
//! back to its carrier between jobs, so a handful of OS threads serve
//! an arbitrary number of in-flight requests.
//!
//! This deliberately diverges from coroutine-per-session: lthread
//! stacks are committed up front, so parking ten thousand idle
//! sessions each on its own stack would waste hundreds of megabytes.
//! Sessions park *in the reactor* (a few bytes of registered interest)
//! and borrow a coroutine only while a request is actually being
//! handled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use plat::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::coro::{Coroutine, Resume};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle carrier naps between queue sweeps.
const IDLE_NAP: Duration = Duration::from_micros(500);

/// Pool sizing.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Carrier OS threads.
    pub carriers: usize,
    /// Coroutines multiplexed per carrier.
    pub lthreads_per_carrier: usize,
    /// Stack bytes per coroutine (rounded up by [`Coroutine::new`]).
    pub stack_size: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            carriers: 2,
            lthreads_per_carrier: 8,
            stack_size: 64 * 1024,
        }
    }
}

/// Error returned by [`JobPool::spawn`] once the pool is shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolShutdown;

impl std::fmt::Display for PoolShutdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job pool is shut down")
    }
}

impl std::error::Error for PoolShutdown {}

/// Shared pool state visible to every coroutine.
struct PoolShared {
    /// Jobs accepted but not yet finished (drives idle napping and the
    /// `lthread_pool_queue_depth` gauge).
    in_flight: AtomicU64,
    /// Jobs completed (monotonic; `lthread_pool_jobs_total`).
    completed: AtomicU64,
}

/// The M:N worker pool.
pub struct JobPool {
    tx: Option<Sender<Job>>,
    carriers: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl JobPool {
    /// Starts the carriers and their coroutines.
    pub fn new(cfg: PoolConfig) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let shared = Arc::new(PoolShared {
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let carriers = (0..cfg.carriers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                let coros = cfg.lthreads_per_carrier.max(1);
                let stack = cfg.stack_size;
                std::thread::spawn(move || carrier(rx, shared, coros, stack))
            })
            .collect();
        JobPool {
            tx: Some(tx),
            carriers,
            shared,
        }
    }

    /// Queues a job for execution on some coroutine.
    ///
    /// # Errors
    ///
    /// [`PoolShutdown`] when the pool no longer accepts work.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolShutdown> {
        let Some(tx) = &self.tx else {
            return Err(PoolShutdown);
        };
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        libseal_telemetry::gauge("lthread_pool_queue_depth").add(1);
        match tx.send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                libseal_telemetry::gauge("lthread_pool_queue_depth").sub(1);
                Err(PoolShutdown)
            }
        }
    }

    /// Jobs accepted but not yet finished.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Jobs run to completion since the pool started.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Stops accepting jobs, drains everything already queued, and
    /// joins the carriers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Dropping the only sender turns the queue Disconnected *after*
        // it empties (mpsc semantics), so queued jobs still run.
        self.tx = None;
        for h in self.carriers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One carrier thread: resume every coroutine round-robin; nap when a
/// full sweep found no work; exit once every coroutine finished (which
/// they do only on queue disconnection, i.e. shutdown).
fn carrier(rx: Receiver<Job>, shared: Arc<PoolShared>, coros: usize, stack: usize) {
    let mut lthreads: Vec<Coroutine> = (0..coros)
        .map(|_| {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            Coroutine::new(stack, move |y| loop {
                match rx.try_recv() {
                    Ok(job) => {
                        job();
                        shared.completed.fetch_add(1, Ordering::SeqCst);
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                        libseal_telemetry::counter("lthread_pool_jobs_total").inc();
                        libseal_telemetry::gauge("lthread_pool_queue_depth").sub(1);
                    }
                    // Empty: park this coroutine until the carrier's
                    // next sweep.
                    Err(RecvTimeoutError::Timeout) => y.yield_now(),
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            })
        })
        .collect();
    loop {
        let before = shared.completed.load(Ordering::SeqCst);
        let mut finished = 0usize;
        for c in lthreads.iter_mut() {
            if c.is_finished() || c.resume() == Resume::Finished {
                finished += 1;
            }
        }
        if finished == lthreads.len() {
            return;
        }
        // Nothing ran this sweep and nothing is waiting: nap instead
        // of spinning the queue lock.
        if shared.completed.load(Ordering::SeqCst) == before
            && shared.in_flight.load(Ordering::SeqCst) == 0
        {
            std::thread::sleep(IDLE_NAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_complete() {
        let pool = JobPool::new(PoolConfig {
            carriers: 2,
            lthreads_per_carrier: 4,
            stack_size: 64 * 1024,
        });
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.completed() < 100 {
            assert!(std::time::Instant::now() < deadline, "pool stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 100);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = JobPool::new(PoolConfig {
            carriers: 1,
            lthreads_per_carrier: 2,
            stack_size: 64 * 1024,
        });
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 50, "shutdown must drain");
    }

    #[test]
    fn blocked_job_does_not_stop_other_carriers() {
        let pool = JobPool::new(PoolConfig {
            carriers: 2,
            lthreads_per_carrier: 2,
            stack_size: 64 * 1024,
        });
        let (gate_tx, gate_rx) = channel::unbounded::<()>();
        pool.spawn(move || {
            // Block until released — pins one carrier.
            let _ = gate_rx.recv_timeout(Duration::from_secs(30));
        })
        .unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) < 20 {
            assert!(
                std::time::Instant::now() < deadline,
                "other carrier should have served the quick jobs"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn spawn_after_shutdown_fails() {
        let mut pool = JobPool::new(PoolConfig::default());
        pool.shutdown_inner();
        assert!(pool.spawn(|| ()).is_err());
    }
}

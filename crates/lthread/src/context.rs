//! Raw x86-64 context switching for stackful coroutines.
//!
//! Modelled on the boost-context / lthread approach: a switch saves the
//! System V callee-saved registers and the stack pointer of the current
//! execution context, then restores those of the target context. New
//! contexts are born with a hand-crafted stack frame whose return
//! address is a trampoline that calls into Rust.

#![cfg(all(target_arch = "x86_64", not(feature = "portable-lthreads")))]

use std::panic::AssertUnwindSafe;

core::arch::global_asm!(
    ".text",
    ".globl lthread_ctx_switch",
    ".type lthread_ctx_switch, @function",
    // fn lthread_ctx_switch(save: *mut u64 /* rdi */, restore: u64 /* rsi */)
    "lthread_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov qword ptr [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size lthread_ctx_switch, . - lthread_ctx_switch",
    ".globl lthread_ctx_tramp",
    ".type lthread_ctx_tramp, @function",
    // First activation of a new context lands here via `ret`. The
    // coroutine cell pointer was parked in r12 by `prepare_stack`.
    "lthread_ctx_tramp:",
    "mov rdi, r12",
    // `ret` left rsp 8-modulo-16; realign for the call below.
    "sub rsp, 8",
    "call {entry}",
    "ud2",
    ".size lthread_ctx_tramp, . - lthread_ctx_tramp",
    entry = sym lthread_entry,
);

unsafe extern "C" {
    /// Saves the current context's stack pointer through `save` and
    /// resumes execution at the context whose stack pointer is
    /// `restore`.
    pub fn lthread_ctx_switch(save: *mut u64, restore: u64);
    fn lthread_ctx_tramp();
}

/// Everything the trampoline needs to run a coroutine body.
pub struct EntryCell {
    /// The coroutine body; taken exactly once by the trampoline.
    pub body: Option<Box<dyn FnOnce()>>,
    /// Where the final "I am done" switch returns to (the resumer's
    /// saved stack pointer). Updated on every resume.
    pub return_rsp: u64,
}

/// The Rust half of the trampoline: runs the body, then switches back
/// to the most recent resumer forever.
///
/// # Safety
///
/// Called exactly once per coroutine by `lthread_ctx_tramp` with the
/// pointer that `prepare_stack` parked in `r12`; `cell` must stay valid
/// for the coroutine's lifetime.
unsafe extern "C" fn lthread_entry(cell: *mut EntryCell) -> ! {
    {
        // SAFETY: The cell outlives the coroutine (owned by Coroutine).
        let cell_ref = unsafe { &mut *cell };
        let body = cell_ref.body.take().expect("body present at first entry");
        // A panic must not unwind into the assembly trampoline.
        let result = std::panic::catch_unwind(AssertUnwindSafe(body));
        if result.is_err() {
            // Propagating coroutine panics across contexts is not
            // supported; treat it as fatal like a panic in a detached
            // thread would be under panic=abort.
            eprintln!("lthread: coroutine panicked; aborting");
            std::process::abort();
        }
    }
    // SAFETY: `cell` is still valid; return_rsp was stored by the
    // resumer immediately before switching to us.
    unsafe {
        let mut scratch = 0u64;
        let target = (*cell).return_rsp;
        lthread_ctx_switch(&mut scratch, target);
    }
    unreachable!("finished coroutine must never be resumed");
}

/// Carves an initial stack frame for a new coroutine into `stack` and
/// returns the stack pointer to switch to.
///
/// # Safety
///
/// `cell` must remain valid (not moved or dropped) until the coroutine
/// finishes; `stack` must outlive the coroutine.
pub unsafe fn prepare_stack(stack: &mut [u8], cell: *mut EntryCell) -> u64 {
    let top = stack.as_mut_ptr() as u64 + stack.len() as u64;
    // 16-byte align the top.
    let mut sp = top & !15;
    let mut push = |v: u64| {
        sp -= 8;
        // SAFETY: sp stays within `stack`, which is at least 4 KiB.
        unsafe { (sp as *mut u64).write(v) };
    };
    push(0); // Fake return address slot for the trampoline's frame.
    push(lthread_ctx_tramp as *const () as usize as u64); // `ret` target of first switch.
    push(0); // rbp
    push(0); // rbx
    push(cell as u64); // r12: the trampoline's argument.
    push(0); // r13
    push(0); // r14
    push(0); // r15
    sp
}

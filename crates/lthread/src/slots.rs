//! Shared request slots for asynchronous enclave calls (§4.3, Fig. 4).
//!
//! One slot per application thread, shared between the enclave and the
//! outside. The application thread writes an async-ecall into its slot
//! and waits; an lthread task inside the enclave claims and executes
//! it. When enclave code needs the outside world, it posts an
//! async-ocall into the *same* slot — the paper requires ocalls to be
//! executed by the application thread that issued the ecall, because
//! that thread owns the context (e.g. the client socket).

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::Thread;

use libseal_sgxsim::enclave::EnclaveServices;
use plat::sync::Mutex;

/// An enclave-bound request: runs against the trusted state with an
/// [`OcallPort`] for calling back out.
pub type EcallFn<T> = Box<dyn for<'p> FnOnce(&T, &EnclaveServices, &OcallPort<'p, T>) + Send>;

/// An outside-bound request: runs on the application thread.
pub type OcallFn = Box<dyn FnOnce() + Send>;

/// One application thread's request slot.
pub struct Slot<T> {
    /// An ecall request is waiting to be claimed by an lthread task.
    pub(crate) ecall_pending: AtomicBool,
    /// The ecall finished; its result cell is filled.
    pub(crate) ecall_done: AtomicBool,
    /// An ocall request is waiting for the application thread.
    pub(crate) ocall_pending: AtomicBool,
    /// The ocall finished; its result cell is filled.
    pub(crate) ocall_done: AtomicBool,
    pub(crate) ecall_req: Mutex<Option<EcallFn<T>>>,
    pub(crate) ocall_req: Mutex<Option<OcallFn>>,
    /// Parked application thread to wake (poller mode).
    pub(crate) waiter: Mutex<Option<Thread>>,
    /// Whether an application thread currently owns this slot.
    pub(crate) occupied: AtomicBool,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            ecall_pending: AtomicBool::new(false),
            ecall_done: AtomicBool::new(false),
            ocall_pending: AtomicBool::new(false),
            ocall_done: AtomicBool::new(false),
            ecall_req: Mutex::new(None),
            ocall_req: Mutex::new(None),
            waiter: Mutex::new(None),
            occupied: AtomicBool::new(false),
        }
    }
}

impl<T> Slot<T> {
    /// Attempts to claim a pending ecall request; used by lthread tasks.
    pub(crate) fn try_claim_ecall(&self) -> Option<EcallFn<T>> {
        if self
            .ecall_pending
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.ecall_req.lock().take()
        } else {
            None
        }
    }

    /// Whether anything in this slot needs the application thread's
    /// attention.
    pub(crate) fn needs_app_thread(&self) -> bool {
        self.ocall_pending.load(Ordering::Acquire) || self.ecall_done.load(Ordering::Acquire)
    }
}

/// Enclave-side handle for issuing asynchronous ocalls from within an
/// async ecall.
pub struct OcallPort<'p, T> {
    pub(crate) slot: &'p Slot<T>,
    pub(crate) yielder: &'p crate::coro::Yielder,
    pub(crate) services: &'p EnclaveServices,
}

impl<T> OcallPort<'_, T> {
    /// Executes `f` outside the enclave on the owning application
    /// thread, suspending this lthread task until the result arrives.
    ///
    /// Costs one cheap slot handoff instead of a full enclave
    /// transition.
    pub fn ocall<R: Send + 'static>(&self, _name: &'static str, f: impl FnOnce() -> R + Send) -> R {
        self.services.model().charge_async_handoff();
        self.services
            .stats()
            .record_async_ocall(self.services.model().async_handoff_cycles);

        let result: std::sync::Arc<Mutex<Option<R>>> = std::sync::Arc::new(Mutex::new(None));
        let result2 = std::sync::Arc::clone(&result);
        // SAFETY of the lifetime erasure below: we block (yield-loop)
        // inside this function until `ocall_done` is set, so `f` cannot
        // outlive this stack frame even though the box claims 'static.
        let boxed: Box<dyn FnOnce() + Send> = Box::new(move || {
            *result2.lock() = Some(f());
        });
        let boxed: OcallFn = unsafe { std::mem::transmute(boxed) };

        *self.slot.ocall_req.lock() = Some(boxed);
        self.slot.ocall_done.store(false, Ordering::Release);
        self.slot.ocall_pending.store(true, Ordering::Release);
        // Wake a parked application thread (poller mode is handled by
        // the poller, but direct wake is cheap and correct here too).
        if let Some(w) = self.slot.waiter.lock().take() {
            w.unpark();
        }

        while !self.slot.ocall_done.load(Ordering::Acquire) {
            self.yielder.yield_now();
        }
        self.slot.ocall_done.store(false, Ordering::Release);
        let out = result.lock().take();
        out.expect("ocall result present after ocall_done")
    }

    /// The enclave services (sealing, RNG, stats) for this call.
    pub fn services(&self) -> &EnclaveServices {
        self.services
    }
}

//! Reactor capacity: the C10k shape from ROADMAP item 2.
//!
//! Registers 10 000 fds (eventfd notifiers — one fd each, so the
//! suite stays inside the default rlimit) and interleaves bursts of
//! activity on a small subset, checking that wait() reports exactly
//! the active tokens while the idle mass costs nothing.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use plat::reactor::{Interest, Notifier, Reactor};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const IDLE: usize = 10_000;

#[test]
fn ten_thousand_idle_registrations_with_interleaved_activity() {
    let reactor = Reactor::new().expect("reactor on linux");
    let mut fds = Vec::with_capacity(IDLE);
    for token in 0..IDLE {
        let n = Notifier::new().expect("eventfd");
        reactor
            .register(&n, token as u64, Interest::READABLE)
            .expect("register");
        fds.push(n);
    }

    // Idle mass alone: the reactor parks, nothing fires.
    let mut events = Vec::with_capacity(1024);
    let t0 = Instant::now();
    let n = reactor
        .wait(&mut events, Some(Duration::from_millis(30)))
        .unwrap();
    assert_eq!(n, 0, "10k idle fds must produce no events");
    assert!(t0.elapsed() >= Duration::from_millis(25));

    // Bursts of activity scattered across the registration space,
    // interleaved with waits: only the active tokens may surface.
    for round in 0..5u64 {
        let active: BTreeSet<u64> = (0..200u64)
            .map(|i| (i * 37 + round * 101) % IDLE as u64)
            .collect();
        for &t in &active {
            fds[t as usize].notify();
        }
        let mut seen = BTreeSet::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.len() < active.len() && Instant::now() < deadline {
            reactor
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                assert!(ev.readable);
                assert!(active.contains(&ev.token), "idle token {} fired", ev.token);
                fds[ev.token as usize].drain();
                seen.insert(ev.token);
            }
        }
        assert_eq!(seen, active, "round {round}: every active fd must fire");
        // Drained: the wheel of idle sessions goes quiet again.
        assert_eq!(
            reactor
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    for n in &fds {
        reactor.deregister(n).unwrap();
    }
}

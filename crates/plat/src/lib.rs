//! Platform shims keeping the workspace free of external crates.
//!
//! LibSEAL's trust argument rests on a small, fully-auditable TCB
//! (§4: the paper ports LibreSSL and SQLite into the enclave rather
//! than trusting opaque binaries). This crate applies the same policy
//! to the reproduction itself: every capability the workspace used to
//! pull from crates.io lives here as a thin, std-backed shim, so a
//! clean checkout builds with `CARGO_NET_OFFLINE=true` and an empty
//! registry cache.
//!
//! - [`sync`] — poison-transparent `Mutex`/`RwLock` (the `parking_lot`
//!   surface the workspace used).
//! - [`channel`] — cloneable MPMC channel with `recv_timeout` (the
//!   `crossbeam::channel` surface).
//! - [`entropy`] — OS randomness: `/dev/urandom`, falling back to the
//!   `getrandom` syscall (the `rand::rngs::OsRng` surface).
//! - [`tmp`] — RAII temp-path guard for disk-backed tests.
//! - [`check`] — seeded, shrink-free property-testing harness (the
//!   `proptest` surface, deterministic by construction).
//! - [`failpoint`] — deterministic fault injection (the `fail-rs`
//!   surface): named sites, per-test scoped fault scenarios, torn
//!   writes and simulated crashes for crash-consistency testing.
//! - [`reactor`] — epoll-backed readiness multiplexer with an
//!   `eventfd` waker (the `mio` surface), via direct syscalls.
//! - [`timer`] — hashed deadline wheel for per-session timeouts.
//! - [`chaos`] — deterministic fault-injecting stream wrapper (short
//!   reads/writes, stalls, resets, truncation, delays) for
//!   hostile-network testing.

pub mod channel;
pub mod chaos;
pub mod check;
pub mod entropy;
pub mod failpoint;
pub mod reactor;
pub mod sync;
pub mod timer;
pub mod tmp;

//! An unbounded channel with cloneable receivers (the
//! `crossbeam::channel` surface the servers use).
//!
//! Built on `std::sync::mpsc` with the receiver behind a shared lock
//! so several worker threads can compete for items (MPMC consumption).
//! `recv_timeout` polls `try_recv` instead of blocking under the lock,
//! so a waiting worker never starves its siblings for a whole timeout.

use std::sync::mpsc::{self, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::Mutex;

/// How long a blocked receiver sleeps between `try_recv` polls.
const POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Why a receive with a deadline returned without an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the channel still empty.
    Timeout,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

/// Creates an unbounded channel; both halves are cloneable.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

/// The sending half; cloneable across threads.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends an item; fails only when every receiver is gone.
    ///
    /// # Errors
    ///
    /// Returns the item back when the channel is disconnected.
    pub fn send(&self, value: T) -> Result<(), T> {
        self.0.send(value).map_err(|e| e.0)
    }
}

/// The receiving half; cloneable — clones compete for items.
pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Receiver<T> {
    /// Receives an item, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.0.lock().try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Receives an item if one is already queued.
    ///
    /// # Errors
    ///
    /// As [`Receiver::recv_timeout`] with a zero deadline.
    pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
        match self.0.lock().try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
            Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_fan_out_to_competing_receivers() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(v) => got.push(v),
                        Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => break,
                    }
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (tx, rx) = unbounded::<u32>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}

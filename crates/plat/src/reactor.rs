//! Readiness reactor without `mio` or `libc`.
//!
//! The paper's §4.3 asynchronous enclave calls exist because
//! thread-per-connection cannot hold tens of thousands of mostly-idle
//! TLS sessions. The service layer therefore needs a readiness API —
//! one thread parked in the kernel watching every session socket —
//! and, per the workspace's hermetic-build policy, it has to come from
//! `std` plus direct syscalls rather than a crates.io event library.
//!
//! On Linux (x86_64/aarch64) this wraps `epoll` invoked via inline
//! `asm!`, the same idiom [`crate::entropy`] uses for `getrandom`. An
//! `eventfd`-backed [`Notifier`] doubles as the cross-thread waker so
//! worker pools can interrupt a blocked [`Reactor::wait`]. On any
//! other platform [`Reactor::new`] returns `ErrorKind::Unsupported`
//! and callers are expected to fall back to their threaded path.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Readiness interest for a registered file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
    /// Edge-triggered delivery (`EPOLLET`). Level-triggered when false.
    pub edge: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };

    pub fn readable_writable() -> Interest {
        Interest {
            readable: true,
            writable: true,
            edge: false,
        }
    }

    pub fn edge(mut self) -> Interest {
        self.edge = true;
        self
    }
}

/// One readiness event returned by [`Reactor::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up (`EPOLLHUP`/`EPOLLRDHUP`); drain then close.
    pub closed: bool,
    /// Error condition on the fd (`EPOLLERR`).
    pub error: bool,
}

/// Token reserved for the reactor's internal waker; never surfaced.
const WAKE_TOKEN: u64 = u64::MAX;

/// An `eventfd`-backed doorbell: `notify` from any thread, `drain`
/// from the owner. Registerable with a [`Reactor`] via `AsRawFd`.
#[derive(Clone)]
pub struct Notifier {
    fd: Arc<File>,
}

impl Notifier {
    pub fn new() -> io::Result<Notifier> {
        let raw = sys::eventfd()?;
        // SAFETY: eventfd() returned a freshly created fd we own.
        let fd = unsafe { File::from_raw_fd(raw) };
        Ok(Notifier { fd: Arc::new(fd) })
    }

    /// Rings the doorbell. Cheap and signal-safe; callable from any
    /// thread. A full counter (already 2^64-2 pending) is ignored.
    pub fn notify(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&*self.fd).write(&one);
    }

    /// Clears pending notifications, returning how many `notify`
    /// calls were coalesced since the last drain.
    pub fn drain(&self) -> u64 {
        let mut buf = [0u8; 8];
        match (&*self.fd).read(&mut buf) {
            Ok(8) => u64::from_ne_bytes(buf),
            _ => 0,
        }
    }
}

impl AsRawFd for Notifier {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

/// Cross-thread handle that interrupts a blocked [`Reactor::wait`].
#[derive(Clone)]
pub struct Waker {
    notifier: Notifier,
}

impl Waker {
    pub fn wake(&self) {
        self.notifier.notify();
    }
}

/// An epoll-backed readiness multiplexer.
///
/// Register sockets with a `u64` token, then park in [`wait`] until
/// any of them becomes ready or a [`Waker`] fires. All methods take
/// `&self`; the kernel serialises epoll_ctl against epoll_pwait, so a
/// reactor may be driven from one thread while another registers.
///
/// [`wait`]: Reactor::wait
pub struct Reactor {
    ep: File,
    wake: Notifier,
}

impl Reactor {
    /// Creates a reactor, or `ErrorKind::Unsupported` on platforms
    /// without epoll — callers should fall back to threaded serving.
    pub fn new() -> io::Result<Reactor> {
        let raw = sys::epoll_create()?;
        // SAFETY: epoll_create() returned a freshly created fd we own.
        let ep = unsafe { File::from_raw_fd(raw) };
        let wake = Notifier::new()?;
        let r = Reactor { ep, wake };
        r.register(&r.wake, WAKE_TOKEN, Interest::READABLE)?;
        Ok(r)
    }

    /// Adds `fd` with the given token. The token comes back verbatim
    /// in [`Event::token`]; `u64::MAX` is reserved for the waker.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.ep.as_raw_fd(),
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            sys::mask(interest),
            token,
        )
    }

    /// Replaces the interest set (and token) of a registered fd.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.ep.as_raw_fd(),
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            sys::mask(interest),
            token,
        )
    }

    /// Removes a registered fd. Safe to call on an fd about to close.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_ctl(
            self.ep.as_raw_fd(),
            sys::EPOLL_CTL_DEL,
            fd.as_raw_fd(),
            0,
            0,
        )
    }

    /// Blocks until readiness, wake-up, or timeout. Events are
    /// appended to `events` (cleared first); returns the count.
    /// `None` blocks indefinitely. A [`Waker`] firing just unblocks
    /// the call — it never surfaces as an event.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let max = events.capacity().clamp(64, 4096);
        let mut raw = vec![sys::EpollEvent::default(); max];
        let n = loop {
            match sys::epoll_wait(self.ep.as_raw_fd(), &mut raw, timeout) {
                Ok(n) => break n,
                // EINTR: a signal interrupted the park; just retry.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let (bits, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                self.wake.drain();
                continue;
            }
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                error: bits & sys::EPOLLERR != 0,
            });
        }
        Ok(events.len())
    }

    /// A cloneable handle that interrupts [`Reactor::wait`] from any
    /// thread (used by worker pools posting completions).
    pub fn waker(&self) -> Waker {
        Waker {
            notifier: self.wake.clone(),
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{Duration, Interest};
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;

    // The kernel packs epoll_event on x86_64 only; elsewhere the
    // struct has natural alignment (4 bytes padding before data).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
    }

    #[cfg(target_arch = "x86_64")]
    fn syscall5(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn syscall5(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") 0usize,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        if interest.edge {
            m |= EPOLLET;
        }
        m
    }

    pub fn epoll_create() -> io::Result<i32> {
        check(syscall5(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0)).map(|fd| fd as i32)
    }

    pub fn eventfd() -> io::Result<i32> {
        check(syscall5(
            nr::EVENTFD2,
            0,
            EFD_CLOEXEC | EFD_NONBLOCK,
            0,
            0,
            0,
        ))
        .map(|fd| fd as i32)
    }

    pub fn epoll_ctl(ep: i32, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        check(syscall5(
            nr::EPOLL_CTL,
            ep as usize,
            op,
            fd as usize,
            &ev as *const EpollEvent as usize,
            0,
        ))
        .map(|_| ())
    }

    pub fn epoll_wait(
        ep: i32,
        buf: &mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let ms: isize = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round up so a 100µs deadline doesn't become a busy-spin.
            Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as isize,
        };
        // epoll_pwait(ep, events, max, timeout, sigmask=NULL); aarch64
        // has no plain epoll_wait, so use pwait on both arches.
        check(syscall5(
            nr::EPOLL_PWAIT,
            ep as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            ms as usize,
            0,
        ))
        .map(|n| n as usize)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{Duration, Interest};
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;

    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor requires Linux epoll",
        ))
    }

    pub fn mask(_interest: Interest) -> u32 {
        0
    }

    pub fn epoll_create() -> io::Result<i32> {
        unsupported()
    }

    pub fn eventfd() -> io::Result<i32> {
        unsupported()
    }

    pub fn epoll_ctl(_ep: i32, _op: usize, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn epoll_wait(
        _ep: i32,
        _buf: &mut [EpollEvent],
        _t: Option<Duration>,
    ) -> io::Result<usize> {
        unsupported()
    }
}

/// True when this platform has a working reactor backend.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_on_data() {
        let r = Reactor::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        r.register(&b, 7, Interest::READABLE).unwrap();

        let mut events = Vec::with_capacity(8);
        let n = r
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "no data yet");

        a.write_all(b"x").unwrap();
        let n = r.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn writable_interest_and_modify() {
        let r = Reactor::new().unwrap();
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        r.register(&b, 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        // An idle socket with empty send buffer is instantly writable.
        r.modify(&b, 2, Interest::readable_writable()).unwrap();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_secs(2))).unwrap(),
            1
        );
        assert_eq!(events[0].token, 2);
        assert!(events[0].writable);

        r.deregister(&b).unwrap();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn hangup_reported_as_closed() {
        let r = Reactor::new().unwrap();
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        r.register(&b, 9, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_secs(2))).unwrap(),
            1
        );
        assert!(events[0].closed);
    }

    #[test]
    fn waker_unblocks_wait_without_surfacing_events() {
        let r = Reactor::new().unwrap();
        let waker = r.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        let n = r.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 0, "wake must not surface as an event");
        assert!(start.elapsed() < Duration::from_secs(5));
        t.join().unwrap();

        // Coalesced wakes drain in one go; the next wait times out.
        let w = r.waker();
        w.wake();
        w.wake();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_millis(5))).unwrap(),
            0
        );
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_millis(5))).unwrap(),
            0
        );
    }

    #[test]
    fn edge_triggered_fires_once_per_arrival() {
        let r = Reactor::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        r.register(&b, 3, Interest::READABLE.edge()).unwrap();
        a.write_all(b"hello").unwrap();

        let mut events = Vec::new();
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_secs(2))).unwrap(),
            1
        );
        // Data still unread: level-triggered would fire again, edge stays quiet.
        assert_eq!(
            r.wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn notifier_counts_coalesced_notifies() {
        let n = Notifier::new().unwrap();
        n.notify();
        n.notify();
        n.notify();
        assert_eq!(n.drain(), 3);
        assert_eq!(n.drain(), 0);
    }
}

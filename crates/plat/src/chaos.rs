//! Deterministic network-fault injection for robustness tests.
//!
//! [`ChaosStream`] wraps any `Read + Write` transport and perturbs it
//! according to a seeded schedule: short reads/writes, `WouldBlock`
//! stalls, connection resets, silent byte truncation and delays. The
//! schedule is a pure function of the seed and the operation index, so
//! a failing trial replays exactly from its seed — no time, no OS
//! entropy, no global state.
//!
//! The wrapper composes under the TLS layer (both the blocking
//! `SslStream` and the resumable non-blocking session) exactly where a
//! hostile network would sit, which is how the chaos gate drives
//! handshake-, header-, body- and write-phase faults against the
//! services without any server-side plumbing.
//!
//! Note on stalls: a [`Fault::Stall`] surfaces as `WouldBlock`, which
//! blocking-stream callers treat as a read timeout. Use stalls against
//! non-blocking consumers; use delays to slow a blocking client down.

use std::io::{self, Read, Write};
use std::time::Duration;

/// What the schedule does to one I/O operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Pass through untouched.
    None,
    /// Move at most this many bytes (short read / short write).
    Short(usize),
    /// Fail with `WouldBlock`.
    Stall,
    /// Fail with `ConnectionReset`; sticky — every later op fails too.
    Reset,
    /// Sleep, then perform the op normally.
    Delay(Duration),
    /// Sticky black hole: writes are swallowed, reads report EOF.
    Truncate,
}

/// A deterministic fault schedule.
///
/// Probabilities are per-mille per operation; scheduled faults
/// (`reset_at_op`, `truncate_at_op`) key off the shared read+write
/// operation counter and take precedence over the random draws.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// PRNG seed; equal seeds give equal schedules.
    pub seed: u64,
    /// Per-mille chance of a short read/write.
    pub short_per_mille: u16,
    /// Per-mille chance of a `WouldBlock` stall.
    pub stall_per_mille: u16,
    /// Per-mille chance of a delay.
    pub delay_per_mille: u16,
    /// Sleep injected by each delay fault.
    pub delay: Duration,
    /// Reset the connection at this operation index (sticky).
    pub reset_at_op: Option<u64>,
    /// Black-hole the stream from this operation index (sticky).
    pub truncate_at_op: Option<u64>,
}

impl ChaosConfig {
    /// A fault-free schedule with the given seed; add faults with the
    /// builder methods.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            short_per_mille: 0,
            stall_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(1),
            reset_at_op: None,
            truncate_at_op: None,
        }
    }

    /// Short read/write probability, per mille.
    #[must_use]
    pub fn shorts(mut self, per_mille: u16) -> ChaosConfig {
        self.short_per_mille = per_mille;
        self
    }

    /// `WouldBlock` stall probability, per mille.
    #[must_use]
    pub fn stalls(mut self, per_mille: u16) -> ChaosConfig {
        self.stall_per_mille = per_mille;
        self
    }

    /// Delay probability (per mille) and the sleep per delay.
    #[must_use]
    pub fn delays(mut self, per_mille: u16, delay: Duration) -> ChaosConfig {
        self.delay_per_mille = per_mille;
        self.delay = delay;
        self
    }

    /// Reset the connection at operation `op`.
    #[must_use]
    pub fn reset_at(mut self, op: u64) -> ChaosConfig {
        self.reset_at_op = Some(op);
        self
    }

    /// Black-hole the stream from operation `op`.
    #[must_use]
    pub fn truncate_at(mut self, op: u64) -> ChaosConfig {
        self.truncate_at_op = Some(op);
        self
    }
}

/// splitmix64: tiny, well-distributed, and good enough to decorrelate
/// fault draws. Not cryptographic, deliberately — schedules must
/// replay.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `Read + Write` transport with deterministic injected faults.
pub struct ChaosStream<S> {
    inner: S,
    cfg: ChaosConfig,
    rng: u64,
    ops: u64,
    reset: bool,
    truncated: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under the given schedule.
    pub fn new(inner: S, cfg: ChaosConfig) -> ChaosStream<S> {
        ChaosStream {
            inner,
            cfg,
            rng: cfg.seed,
            ops: 0,
            reset: false,
            truncated: false,
        }
    }

    /// Operations (reads + writes) the schedule has decided so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Decides the fault for the next operation. Consumes exactly one
    /// op index and (for the probabilistic path) a fixed number of
    /// PRNG draws, so the schedule depends only on seed and op count.
    fn next_fault(&mut self) -> Fault {
        let op = self.ops;
        self.ops += 1;
        if self.reset {
            return Fault::Reset;
        }
        if self.cfg.reset_at_op.is_some_and(|at| op >= at) {
            self.reset = true;
            return Fault::Reset;
        }
        if self.truncated || self.cfg.truncate_at_op.is_some_and(|at| op >= at) {
            self.truncated = true;
            return Fault::Truncate;
        }
        let roll = (splitmix64(&mut self.rng) % 1000) as u16;
        let len_draw = splitmix64(&mut self.rng); // always drawn: keeps the stream aligned
        let stall_end = self.cfg.stall_per_mille;
        let short_end = stall_end.saturating_add(self.cfg.short_per_mille);
        let delay_end = short_end.saturating_add(self.cfg.delay_per_mille);
        if roll < stall_end {
            Fault::Stall
        } else if roll < short_end {
            Fault::Short(1 + (len_draw % 8) as usize)
        } else if roll < delay_end {
            Fault::Delay(self.cfg.delay)
        } else {
            Fault::None
        }
    }
}

fn reset_err() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected reset")
}

fn stall_err() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "chaos: injected stall")
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.next_fault() {
            Fault::None => self.inner.read(buf),
            Fault::Short(n) => {
                let cap = n.min(buf.len()).max(1).min(buf.len());
                self.inner.read(&mut buf[..cap])
            }
            Fault::Stall => Err(stall_err()),
            Fault::Reset => Err(reset_err()),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Fault::Truncate => Ok(0),
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.next_fault() {
            Fault::None => self.inner.write(buf),
            Fault::Short(n) => {
                let cap = n.min(buf.len()).max(1).min(buf.len());
                self.inner.write(&buf[..cap])
            }
            Fault::Stall => Err(stall_err()),
            Fault::Reset => Err(reset_err()),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            // Swallowed, reported as sent: the peer simply never sees
            // the bytes — a mid-path truncation.
            Fault::Truncate => Ok(buf.len()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.reset {
            return Err(reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn faults(cfg: ChaosConfig, n: usize) -> Vec<Fault> {
        let mut s = ChaosStream::new((), cfg);
        (0..n).map(|_| s.next_fault()).collect()
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = ChaosConfig::new(42)
            .shorts(300)
            .stalls(100)
            .delays(50, Duration::from_millis(1));
        assert_eq!(faults(cfg, 1000), faults(cfg, 1000));
        // A different seed must (overwhelmingly) give a different
        // schedule.
        assert_ne!(faults(cfg, 1000), faults(ChaosConfig::new(43).shorts(300).stalls(100).delays(50, Duration::from_millis(1)), 1000));
    }

    #[test]
    fn short_reads_cap_bytes() {
        let data = vec![7u8; 1024];
        let mut s = ChaosStream::new(Cursor::new(data), ChaosConfig::new(1).shorts(1000));
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).unwrap();
        assert!((1..=8).contains(&n), "short read moved {n} bytes");
    }

    #[test]
    fn reset_is_sticky() {
        let mut s = ChaosStream::new(Cursor::new(vec![0u8; 64]), ChaosConfig::new(1).reset_at(2));
        let mut buf = [0u8; 16];
        assert!(s.read(&mut buf).is_ok());
        assert!(s.write(b"x").is_ok());
        for _ in 0..4 {
            let e = s.read(&mut buf).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        }
        assert_eq!(
            s.write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn truncate_black_holes() {
        let mut s = ChaosStream::new(Cursor::new(Vec::new()), ChaosConfig::new(1).truncate_at(0));
        // Writes claim success but the inner stream never sees them.
        assert_eq!(s.write(b"vanish").unwrap(), 6);
        assert!(s.get_ref().get_ref().is_empty());
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn stall_is_would_block() {
        let mut s = ChaosStream::new(Cursor::new(vec![0u8; 8]), ChaosConfig::new(1).stalls(1000));
        let mut buf = [0u8; 8];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn clean_config_passes_through() {
        let mut s = ChaosStream::new(Cursor::new(b"hello".to_vec()), ChaosConfig::new(9));
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }
}

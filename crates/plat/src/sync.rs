//! Poison-transparent locks with the `parking_lot` calling convention.
//!
//! The workspace locks small critical sections and never relies on
//! poisoning for correctness (a panic while holding one of these locks
//! is already a test failure); `lock()`/`read()`/`write()` therefore
//! return guards directly instead of a `Result`, exactly like
//! `parking_lot`. A poisoned lock yields its inner guard.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison-transparent.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access. Poison-transparent.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`], poison-transparent like
/// the locks: `wait`/`wait_timeout` hand back the guard directly. The
/// group-commit barrier in `libseal-core` is built on this.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases `guard` and blocks until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// As [`Condvar::wait`], but gives up after `dur`. Returns the
    /// reacquired guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, to) = self
            .0
            .wait_timeout(guard, dur)
            .unwrap_or_else(|e| e.into_inner());
        (g, to.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

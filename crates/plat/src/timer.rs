//! Deadline wheel for per-session timeouts.
//!
//! A reactor multiplexing thousands of TLS sessions needs one timer
//! per session (idle eviction, handshake deadlines) where the common
//! operations are *reschedule* — every byte of activity pushes the
//! deadline out — and *never fire*. A hashed timer wheel makes both
//! O(1): schedule hashes the deadline into a slot, rescheduling just
//! bumps a generation counter so the stale entry is skipped when its
//! slot comes around (lazy cancellation), and expiry scans only the
//! slots the clock actually crossed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Entry {
    token: u64,
    gen: u64,
    /// Absolute tick index; distinguishes this lap from later ones
    /// hashed into the same slot.
    abs_tick: u64,
}

/// A single-level hashed timer wheel keyed by `u64` tokens.
///
/// One live deadline per token: [`schedule`] replaces any earlier
/// deadline for the same token. Cancellation and replacement are
/// lazy — superseded entries stay in their slot until the cursor
/// passes them, which keeps every mutation O(1).
///
/// [`schedule`]: TimerWheel::schedule
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    start: Instant,
    /// Next absolute tick to process.
    cursor: u64,
    /// token -> (generation, deadline) for live timers.
    live: HashMap<u64, (u64, Instant)>,
    next_gen: u64,
    /// Cached earliest deadline; may be stale (early), never late.
    min_deadline: Option<Instant>,
}

impl TimerWheel {
    /// `tick` is the firing granularity (deadlines round up to it);
    /// `slots` trades memory for fewer multi-lap collisions.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "tick must be non-zero");
        let slots = slots.max(2);
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            start: Instant::now(),
            cursor: 0,
            live: HashMap::new(),
            next_gen: 0,
            min_deadline: None,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let since = t.saturating_duration_since(self.start);
        // Round up: a deadline never fires early.
        (since.as_nanos() / self.tick.as_nanos()) as u64 + 1
    }

    /// Arms (or re-arms) the timer for `token` at `deadline`.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        self.next_gen += 1;
        let gen = self.next_gen;
        self.live.insert(token, (gen, deadline));
        let abs_tick = self.tick_of(deadline).max(self.cursor);
        let idx = (abs_tick % self.slots.len() as u64) as usize;
        self.slots[idx].push(Entry {
            token,
            gen,
            abs_tick,
        });
        self.min_deadline = Some(match self.min_deadline {
            Some(m) if m <= deadline => m,
            _ => deadline,
        });
    }

    /// Disarms `token`'s timer (lazily; O(1)).
    pub fn cancel(&mut self, token: u64) {
        self.live.remove(&token);
    }

    /// Number of live (armed) timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Earliest live deadline, for sizing a poll timeout. May be
    /// conservative (a cancelled timer's deadline until the next
    /// [`expired`] sweep) — waking early is harmless, late is not.
    ///
    /// [`expired`]: TimerWheel::expired
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.live.is_empty() {
            None
        } else {
            self.min_deadline
        }
    }

    /// Collects every token whose deadline has passed, advancing the
    /// wheel to `now`. Fired and stale entries are removed.
    pub fn expired(&mut self, now: Instant) -> Vec<u64> {
        let mut fired = Vec::new();
        let target = self.tick_of(now).saturating_sub(1);
        if target >= self.cursor {
            let n = self.slots.len() as u64;
            let span = target - self.cursor + 1;
            if span >= n {
                // The clock crossed every slot at least once.
                for idx in 0..self.slots.len() {
                    self.sweep_slot(idx, target, now, &mut fired);
                }
            } else {
                for abs in self.cursor..=target {
                    self.sweep_slot((abs % n) as usize, target, now, &mut fired);
                }
            }
            self.cursor = target + 1;
        }
        // Refresh the cached minimum once the stale one has passed,
        // otherwise a cancelled earliest timer pins polls at zero.
        if let Some(m) = self.min_deadline {
            if m <= now {
                self.min_deadline = self.live.values().map(|&(_, d)| d).min();
            }
        }
        fired
    }

    fn sweep_slot(&mut self, idx: usize, target: u64, now: Instant, fired: &mut Vec<u64>) {
        let mut slot = std::mem::take(&mut self.slots[idx]);
        slot.retain(|e| {
            if e.abs_tick > target {
                return true; // a later lap; keep
            }
            if let Some(&(gen, deadline)) = self.live.get(&e.token) {
                if gen == e.gen {
                    if deadline > now {
                        return true; // not due yet; keep armed
                    }
                    self.live.remove(&e.token);
                    fired.push(e.token);
                }
                // gen mismatch: superseded by a reschedule — drop;
                // the newer entry sits elsewhere in the wheel.
            }
            false
        });
        debug_assert!(self.slots[idx].is_empty());
        self.slots[idx] = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(1);

    #[test]
    fn fires_after_deadline_not_before() {
        let mut w = TimerWheel::new(TICK, 64);
        let now = Instant::now();
        w.schedule(1, now + Duration::from_millis(20));
        assert!(w.expired(now + Duration::from_millis(5)).is_empty());
        assert_eq!(w.expired(now + Duration::from_millis(30)), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new(TICK, 64);
        let now = Instant::now();
        w.schedule(1, now + Duration::from_millis(5));
        w.cancel(1);
        assert!(w.expired(now + Duration::from_millis(50)).is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn reschedule_supersedes_earlier_deadline() {
        let mut w = TimerWheel::new(TICK, 64);
        let now = Instant::now();
        w.schedule(1, now + Duration::from_millis(5));
        w.schedule(1, now + Duration::from_millis(200));
        // The old entry's slot passes without firing.
        assert!(w.expired(now + Duration::from_millis(50)).is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w.expired(now + Duration::from_millis(300)), vec![1]);
    }

    #[test]
    fn multi_lap_deadlines_wait_their_lap() {
        // 4 slots x 1ms: a 100ms deadline wraps the wheel many times.
        let mut w = TimerWheel::new(TICK, 4);
        let now = Instant::now();
        w.schedule(1, now + Duration::from_millis(100));
        assert!(w.expired(now + Duration::from_millis(50)).is_empty());
        assert_eq!(w.expired(now + Duration::from_millis(150)), vec![1]);
    }

    #[test]
    fn next_deadline_tracks_earliest_and_recovers_after_cancel() {
        let mut w = TimerWheel::new(TICK, 64);
        let now = Instant::now();
        assert!(w.next_deadline().is_none());
        let d1 = now + Duration::from_millis(10);
        let d2 = now + Duration::from_millis(500);
        w.schedule(1, d1);
        w.schedule(2, d2);
        assert_eq!(w.next_deadline(), Some(d1));
        w.cancel(1);
        // Stale (early) is allowed ...
        let hint = w.next_deadline().unwrap();
        assert!(hint <= d2);
        // ... and a sweep past the stale minimum repairs it.
        assert!(w.expired(now + Duration::from_millis(20)).is_empty());
        assert_eq!(w.next_deadline(), Some(d2));
    }

    #[test]
    fn thousands_of_timers_fire_exactly_once() {
        let mut w = TimerWheel::new(TICK, 256);
        let now = Instant::now();
        for t in 0..5000u64 {
            w.schedule(t, now + Duration::from_millis(1 + t % 97));
        }
        // Constant rescheduling, as an idle-timeout workload does.
        for t in 0..5000u64 {
            w.schedule(t, now + Duration::from_millis(10 + t % 53));
        }
        let mut fired = w.expired(now + Duration::from_millis(200));
        fired.sort_unstable();
        assert_eq!(fired.len(), 5000);
        assert_eq!(fired, (0..5000).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert!(w.expired(now + Duration::from_millis(400)).is_empty());
    }
}

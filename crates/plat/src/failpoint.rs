//! Deterministic fault injection (the `fail-rs` surface, zero-dep).
//!
//! Code under test declares *sites* — named points on its I/O and
//! protocol paths — by calling [`check`] (control points) or
//! [`write_all`] (write points). In production nothing is configured:
//! a site costs one relaxed atomic load. Tests open a [`Scenario`]
//! (a global lock, so concurrent tests serialize instead of stomping
//! each other's faults) and attach a [`FaultSpec`] to a site:
//!
//! - **return-error** — the site fails with an injected I/O error;
//! - **partial-write** — a write point persists only a prefix of its
//!   buffer and then fails (a torn write, as a crash mid-`write(2)`
//!   leaves it);
//! - **delay** — the site sleeps, then proceeds (slow disk / network);
//! - **simulated-crash** — the site fails *and latches the process
//!   dead*: every later site also fails until the scenario is torn
//!   down, so no code "after the crash" can touch the disk. Recovery
//!   code then runs under a fresh scenario, exactly like a restarted
//!   process reading what the dead one left behind.
//!
//! Sites hit while a scenario is active are recorded, so a harness can
//! dry-run a workload once and then enumerate every registered site —
//! the crash-matrix gate in `ci.sh` crashes each of them in turn.

use std::collections::BTreeMap;
use std::time::Duration;

use std::sync::MutexGuard;

use crate::sync::Mutex;

/// What an armed site does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail with an injected error, touching nothing.
    ReturnError,
    /// Write only the first `n` bytes of the buffer, then fail.
    PartialWrite(usize),
    /// Sleep for the duration, then continue normally.
    Delay(Duration),
    /// Fail and latch the whole process as crashed.
    Crash,
}

/// An [`Action`] plus when it fires: hits `skip .. skip + times`.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    action: Action,
    skip: u64,
    times: u64,
}

impl FaultSpec {
    /// A spec firing on every hit from the first.
    pub fn new(action: Action) -> FaultSpec {
        FaultSpec {
            action,
            skip: 0,
            times: u64::MAX,
        }
    }

    /// Shorthand for [`Action::ReturnError`].
    pub fn error() -> FaultSpec {
        Self::new(Action::ReturnError)
    }

    /// Shorthand for [`Action::Crash`].
    pub fn crash() -> FaultSpec {
        Self::new(Action::Crash)
    }

    /// Shorthand for [`Action::PartialWrite`].
    pub fn partial_write(bytes: usize) -> FaultSpec {
        Self::new(Action::PartialWrite(bytes))
    }

    /// Shorthand for [`Action::Delay`].
    pub fn delay(d: Duration) -> FaultSpec {
        Self::new(Action::Delay(d))
    }

    /// Skips the first `skip` hits before firing.
    pub fn after(mut self, skip: u64) -> FaultSpec {
        self.skip = skip;
        self
    }

    /// Fires for at most `times` hits, then disarms.
    pub fn times(mut self, times: u64) -> FaultSpec {
        self.times = times;
        self
    }
}

#[derive(Default)]
struct Registry {
    /// Hit counts per site since the scenario opened.
    hits: BTreeMap<String, u64>,
    /// Armed faults.
    armed: BTreeMap<String, FaultSpec>,
    /// The site whose `Crash` fired, if any.
    crashed: Option<String>,
}

static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
static SCENARIO: Mutex<()> = Mutex::new(());

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Registry::default))
}

/// Exclusive handle on the global fault-injection state.
///
/// Creating one blocks until every other scenario (in other tests of
/// the same process) is dropped, then clears all armed faults, hit
/// counts and any crash latch. Dropping it clears them again and
/// disables injection.
pub struct Scenario {
    _lock: MutexGuard<'static, ()>,
}

/// Opens a [`Scenario`], serializing against all other scenarios.
pub fn scenario() -> Scenario {
    let lock = SCENARIO.lock();
    with_registry(|r| *r = Registry::default());
    ENABLED.store(true, std::sync::atomic::Ordering::SeqCst);
    Scenario { _lock: lock }
}

impl Scenario {
    /// Arms `site` with `spec` (replacing any previous arming).
    pub fn set(&self, site: &str, spec: FaultSpec) {
        with_registry(|r| {
            r.armed.insert(site.to_string(), spec);
        });
    }

    /// Disarms `site`.
    pub fn unset(&self, site: &str) {
        with_registry(|r| {
            r.armed.remove(site);
        });
    }

    /// Disarms every site and clears the crash latch and hit counts;
    /// the registry of seen site names is kept.
    pub fn reset(&self) {
        with_registry(|r| {
            r.armed.clear();
            r.crashed = None;
            r.hits.values_mut().for_each(|h| *h = 0);
        });
    }

    /// Every site hit since this scenario (or a dry run under it)
    /// started.
    pub fn registered(&self) -> Vec<String> {
        with_registry(|r| r.hits.keys().cloned().collect())
    }

    /// How many times `site` has been hit.
    pub fn hits(&self, site: &str) -> u64 {
        with_registry(|r| r.hits.get(site).copied().unwrap_or(0))
    }

    /// The site whose simulated crash fired, if any.
    pub fn crashed(&self) -> Option<String> {
        with_registry(|r| r.crashed.clone())
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        ENABLED.store(false, std::sync::atomic::Ordering::SeqCst);
        with_registry(|r| *r = Registry::default());
    }
}

/// Whether a simulated crash has latched (the "process" is dead).
pub fn crash_active() -> bool {
    if !ENABLED.load(std::sync::atomic::Ordering::Relaxed) {
        return false;
    }
    with_registry(|r| r.crashed.is_some())
}

fn injected_error(site: &str, what: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint {site}: {what}"))
}

/// True for errors produced by an armed failpoint.
pub fn is_injected(e: &std::io::Error) -> bool {
    e.to_string().contains("failpoint ")
}

/// Records a hit on `site` and returns the action to apply, if any.
/// Delays are served here so callers never see them.
fn eval(site: &str) -> Option<Action> {
    if !ENABLED.load(std::sync::atomic::Ordering::Relaxed) {
        return None;
    }
    let action = with_registry(|r| {
        if r.crashed.is_some() {
            // The process is dead: every subsequent site fails.
            return Some(Action::Crash);
        }
        let hits = r.hits.entry(site.to_string()).or_insert(0);
        let idx = *hits;
        *hits += 1;
        let spec = r.armed.get(site)?;
        if idx < spec.skip || idx >= spec.skip.saturating_add(spec.times) {
            return None;
        }
        if spec.action == Action::Crash {
            r.crashed = Some(site.to_string());
        }
        Some(spec.action)
    });
    if let Some(Action::Delay(d)) = action {
        std::thread::sleep(d);
        return None;
    }
    action
}

/// A control-point site: fails if armed, else a no-op.
///
/// # Errors
///
/// The injected error when the site is armed with `ReturnError`,
/// `PartialWrite` (which degenerates to an error here) or `Crash`.
pub fn check(site: &str) -> std::io::Result<()> {
    match eval(site) {
        None | Some(Action::Delay(_)) => Ok(()),
        Some(Action::Crash) => Err(injected_error(site, "simulated crash")),
        Some(Action::ReturnError) | Some(Action::PartialWrite(_)) => {
            Err(injected_error(site, "injected error"))
        }
    }
}

/// A write-point site: writes `buf` to `w`, or applies the armed
/// fault (a partial write persists a prefix and then fails).
///
/// # Errors
///
/// The injected error, or the underlying writer's.
pub fn write_all(site: &str, w: &mut impl std::io::Write, buf: &[u8]) -> std::io::Result<()> {
    match eval(site) {
        None | Some(Action::Delay(_)) => w.write_all(buf),
        Some(Action::Crash) => Err(injected_error(site, "simulated crash")),
        Some(Action::ReturnError) => Err(injected_error(site, "injected error")),
        Some(Action::PartialWrite(n)) => {
            w.write_all(&buf[..n.min(buf.len())])?;
            Err(injected_error(site, "torn write"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scenario_is_empty_and_unarmed_sites_pass() {
        let s = scenario();
        assert!(s.registered().is_empty());
        assert!(s.crashed().is_none());
        // Unarmed sites are recorded but never fail.
        assert!(check("fp-test::unarmed").is_ok());
        assert_eq!(s.hits("fp-test::unarmed"), 1);
    }

    #[test]
    fn skip_and_times_bound_the_firing_window() {
        let s = scenario();
        s.set("fp-test::win", FaultSpec::error().after(1).times(2));
        assert!(check("fp-test::win").is_ok()); // hit 0: skipped
        assert!(check("fp-test::win").is_err()); // hit 1
        assert!(check("fp-test::win").is_err()); // hit 2
        assert!(check("fp-test::win").is_ok()); // hit 3: expired
        assert_eq!(s.hits("fp-test::win"), 4);
    }

    #[test]
    fn crash_latches_until_reset() {
        let s = scenario();
        s.set("fp-test::boom", FaultSpec::crash());
        assert!(check("fp-test::other").is_ok());
        assert!(check("fp-test::boom").is_err());
        // Everything after the crash fails, armed or not.
        assert!(check("fp-test::other").is_err());
        assert!(crash_active());
        assert_eq!(s.crashed().as_deref(), Some("fp-test::boom"));
        s.reset();
        assert!(!crash_active());
        assert!(check("fp-test::boom").is_ok());
    }

    #[test]
    fn partial_write_persists_a_prefix() {
        let s = scenario();
        s.set("fp-test::torn", FaultSpec::partial_write(3));
        let mut out = Vec::new();
        let err = write_all("fp-test::torn", &mut out, b"abcdef").unwrap_err();
        assert!(is_injected(&err));
        assert_eq!(out, b"abc");
        // Unarmed write points pass bytes through.
        s.unset("fp-test::torn");
        write_all("fp-test::torn", &mut out, b"gh").unwrap();
        assert_eq!(out, b"abcgh");
    }

    #[test]
    fn registry_enumerates_sites_for_a_dry_run() {
        let s = scenario();
        check("fp-test::a").unwrap();
        check("fp-test::b").unwrap();
        check("fp-test::b").unwrap();
        let names = s.registered();
        assert!(names.contains(&"fp-test::a".to_string()));
        assert!(names.contains(&"fp-test::b".to_string()));
        assert_eq!(s.hits("fp-test::b"), 2);
    }
}

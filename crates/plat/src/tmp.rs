//! RAII temp paths for disk-backed tests.
//!
//! Tests used to name files `<prefix>-{pid}` and best-effort delete
//! them at the end — a panicking test leaked its file and, worse, a
//! later run in the same process could observe the stale journal.
//! [`TempPath`] owns the path: it is unique per call (pid + counter +
//! OS entropy tag), cleared on creation, and removed on drop even when
//! the test panics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named path under the system temp dir, deleted on drop.
pub struct TempPath(PathBuf);

impl TempPath {
    /// Reserves a fresh path named `<prefix>-<unique>.<ext>`. Nothing
    /// is created on disk; any stale file of the same name is removed.
    pub fn new(prefix: &str, ext: &str) -> TempPath {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut tag = [0u8; 4];
        crate::entropy::fill(&mut tag);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{n}-{:08x}.{ext}",
            std::process::id(),
            u32::from_le_bytes(tag),
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&path);
        TempPath(path)
    }

    /// The reserved path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl AsRef<Path> for TempPath {
    fn as_ref(&self) -> &Path {
        &self.0
    }
}

impl std::ops::Deref for TempPath {
    type Target = Path;
    fn deref(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        if self.0.is_dir() {
            let _ = std::fs::remove_dir_all(&self.0);
        } else {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_file_on_drop() {
        let kept;
        {
            let t = TempPath::new("plat-tmp-test", "log");
            std::fs::write(&t, b"data").unwrap();
            assert!(t.path().exists());
            kept = t.path().to_path_buf();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn removes_dir_on_drop_even_after_panic() {
        let t = TempPath::new("plat-tmp-dir", "d");
        let path = t.path().to_path_buf();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::fs::create_dir_all(&t).unwrap();
            std::fs::write(t.join("inner"), b"x").unwrap();
            drop(t);
            panic!("unwind with guard alive is exercised by the caller frame");
        }));
        assert!(result.is_err());
        assert!(!path.exists());
    }

    #[test]
    fn paths_are_unique() {
        let a = TempPath::new("plat-uni", "x");
        let b = TempPath::new("plat-uni", "x");
        assert_ne!(a.path(), b.path());
    }
}

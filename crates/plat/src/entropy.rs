//! OS entropy without the `rand` crate.
//!
//! The workspace's only real randomness need is seeding the ChaCha20
//! DRBG in `libseal-crypto` (everything downstream runs forward from
//! that seed, mirroring the paper's §4.2 in-enclave generator). This
//! module reads `/dev/urandom` and, when that is unavailable (e.g. a
//! minimal chroot), falls back to the `getrandom(2)` syscall invoked
//! directly — no libc binding required.

use std::io::Read;

/// Fills `buf` with operating-system entropy.
///
/// # Panics
///
/// Panics when no OS entropy source works; seeding a DRBG from a
/// predictable value would silently void every security property, so
/// failing loudly is the only safe behaviour.
pub fn fill(buf: &mut [u8]) {
    if fill_from_urandom(buf).is_ok() {
        return;
    }
    if fill_from_syscall(buf).is_ok() {
        return;
    }
    panic!("no OS entropy source available (/dev/urandom and getrandom both failed)");
}

/// Returns 32 bytes of OS entropy (the DRBG seed shape).
pub fn seed32() -> [u8; 32] {
    let mut seed = [0u8; 32];
    fill(&mut seed);
    seed
}

fn fill_from_urandom(buf: &mut [u8]) -> std::io::Result<()> {
    std::fs::File::open("/dev/urandom")?.read_exact(buf)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn fill_from_syscall(buf: &mut [u8]) -> Result<(), ()> {
    // getrandom(buf, len, 0); syscall 318 on x86_64.
    let mut filled = 0usize;
    while filled < buf.len() {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 318isize => ret,
                in("rdi") buf[filled..].as_mut_ptr(),
                in("rsi") buf.len() - filled,
                in("rdx") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret <= 0 {
            return Err(());
        }
        filled += ret as usize;
    }
    Ok(())
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn fill_from_syscall(buf: &mut [u8]) -> Result<(), ()> {
    // getrandom(buf, len, 0); syscall 278 on aarch64.
    let mut filled = 0usize;
    while filled < buf.len() {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 278usize,
                inlateout("x0") buf[filled..].as_mut_ptr() as usize => ret,
                in("x1") buf.len() - filled,
                in("x2") 0usize,
                options(nostack),
            );
        }
        if ret <= 0 {
            return Err(());
        }
        filled += ret as usize;
    }
    Ok(())
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn fill_from_syscall(_buf: &mut [u8]) -> Result<(), ()> {
    Err(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_produces_distinct_draws() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        fill(&mut a);
        fill(&mut b);
        assert_ne!(a, b, "two 256-bit OS draws must not collide");
        assert_ne!(a, [0u8; 32]);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn syscall_path_works() {
        let mut a = [0u8; 64];
        fill_from_syscall(&mut a).expect("getrandom syscall");
        assert_ne!(a, [0u8; 64]);
    }
}

#![warn(missing_docs)]
//! A ROTE-style distributed monotonic counter (rollback protection).
//!
//! SGX's hardware counters are too slow and wear out (§5.1; see
//! `libseal_sgxsim::counter`), so LibSEAL adopts the protocol of ROTE
//! [Matetic et al., 2017]: each counter increment is replicated to `n =
//! 3f + 1` counter nodes and acknowledged by a quorum of `2f + 1`,
//! tolerating `f` malicious or crashed nodes. An attacker who rolls the
//! local log back must also roll back a quorum of independent nodes.
//!
//! Nodes here are in-process objects with authenticated responses and
//! failure injection; in the paper's deployment they are other LibSEAL
//! instances owned by the provider. As in ROTE, counter messages are
//! authenticated with per-channel MAC keys established once at cluster
//! setup (after mutual attestation), not per-message signatures.
//!
//! # Hardening
//!
//! Requests fan out to every node **concurrently** (one worker thread
//! per node, simulating the per-connection threads a networked
//! deployment would run), so an increment pays the slowest node's
//! latency once, not the sum. Each round collects acknowledgements
//! under a deadline; a round that misses quorum is retried a bounded
//! number of times with exponential, jittered backoff. What happens
//! when every retry fails is the cluster's [`QuorumPolicy`]:
//!
//! - [`QuorumPolicy::FailStop`] (the paper's behaviour): the increment
//!   fails and the local value does not advance — the service stops
//!   accepting requests rather than produce unbound log entries.
//! - [`QuorumPolicy::DegradeAndAlarm`]: the increment succeeds
//!   *unbound* (empty ack vector), the cluster enters degraded mode and
//!   counts unbound increments. Because acknowledgements are for an
//!   absolute counter value, the first subsequent quorum-acknowledged
//!   increment (or an explicit [`Cluster::rebind`]) re-binds the entire
//!   unbound prefix at once. [`Cluster::stats`] exposes the alarm
//!   state so operators and auditors can see the rollback-protection
//!   gap.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_crypto::hmac::HmacSha256;
use plat::channel::{self, RecvTimeoutError};

/// Process-wide ROTE metrics: round latency, quorum health, and the
/// unbound/rebind episode counters mirrored from per-cluster stats.
struct RoteMetrics {
    round_ns: libseal_telemetry::Histogram,
    quorum_state: libseal_telemetry::Gauge,
    unbound_appends: libseal_telemetry::Counter,
    rebinds: libseal_telemetry::Counter,
}

fn rote_metrics() -> &'static RoteMetrics {
    static M: std::sync::OnceLock<RoteMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| RoteMetrics {
        round_ns: libseal_telemetry::histogram("rote_round_ns"),
        quorum_state: libseal_telemetry::gauge("rote_quorum_state"),
        unbound_appends: libseal_telemetry::counter("rote_unbound_appends_total"),
        rebinds: libseal_telemetry::counter("rote_rebinds_total"),
    })
}

/// Errors from the counter protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoteError {
    /// Fewer than a quorum of valid acknowledgements.
    NoQuorum {
        /// Valid acknowledgements received (best round).
        acks: usize,
        /// Required quorum size.
        needed: usize,
    },
    /// The cluster configuration is invalid.
    BadConfig(String),
    /// The transport to the counter nodes failed outright.
    Transport(String),
}

impl std::fmt::Display for RoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoteError::NoQuorum { acks, needed } => {
                write!(f, "no quorum: {acks} acks, {needed} needed")
            }
            RoteError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            RoteError::Transport(m) => write!(f, "transport failure: {m}"),
        }
    }
}

impl std::error::Error for RoteError {}

/// An authenticated acknowledgement of a counter value.
#[derive(Clone, Debug)]
pub struct CounterAck {
    /// Node index.
    pub node: usize,
    /// Acknowledged counter value.
    pub value: u64,
    /// MAC over (counter-id, value) under the node's channel key.
    pub mac: [u8; 32],
}

/// One counter node (runs inside another enclave in the paper's
/// deployment).
pub struct CounterNode {
    index: usize,
    mac_key: [u8; 32],
    value: AtomicU64,
    /// Simulated network + processing latency per request.
    latency: Duration,
    /// Failure injection: node ignores requests while true.
    down: AtomicBool,
    /// Byzantine injection: node acknowledges without storing.
    lies: AtomicBool,
}

impl CounterNode {
    fn mac_payload(counter_id: &[u8], value: u64) -> Vec<u8> {
        let mut p = b"rote-ack:".to_vec();
        p.extend_from_slice(counter_id);
        p.extend_from_slice(&value.to_le_bytes());
        p
    }

    /// Creates a node whose attested channel uses `mac_key`.
    pub fn new(index: usize, mac_key: &[u8; 32], latency: Duration) -> Self {
        CounterNode {
            index,
            mac_key: *mac_key,
            value: AtomicU64::new(0),
            latency,
            down: AtomicBool::new(false),
            lies: AtomicBool::new(false),
        }
    }

    /// The channel MAC key (held by the requesting enclave after the
    /// attestation ceremony).
    pub fn channel_key(&self) -> [u8; 32] {
        self.mac_key
    }

    /// Takes the node down (crash injection).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Makes the node acknowledge without persisting (byzantine).
    pub fn set_lies(&self, lies: bool) {
        self.lies.store(lies, Ordering::SeqCst);
    }

    /// Handles an increment-to request; returns a signed ack, or None
    /// when down or the request would roll the counter back.
    pub fn increment_to(&self, counter_id: &[u8], target: u64) -> Option<CounterAck> {
        if self.down.load(Ordering::SeqCst) {
            return None;
        }
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if !self.lies.load(Ordering::SeqCst) {
            // Monotonicity: never move backwards.
            let mut cur = self.value.load(Ordering::SeqCst);
            loop {
                if target <= cur {
                    break;
                }
                match self
                    .value
                    .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        Some(CounterAck {
            node: self.index,
            value: target,
            mac: HmacSha256::mac(&self.mac_key, &Self::mac_payload(counter_id, target)),
        })
    }

    /// Reads the node's stored value.
    pub fn read(&self, counter_id: &[u8]) -> Option<CounterAck> {
        if self.down.load(Ordering::SeqCst) {
            return None;
        }
        let v = self.value.load(Ordering::SeqCst);
        Some(CounterAck {
            node: self.index,
            value: v,
            mac: HmacSha256::mac(&self.mac_key, &Self::mac_payload(counter_id, v)),
        })
    }
}

/// What the cluster does when an increment exhausts its retries
/// without reaching quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Refuse the increment ([`RoteError::NoQuorum`]); the service
    /// stops rather than write rollback-unprotected entries.
    FailStop,
    /// Grant the increment *unbound* (no acks), raise the degraded
    /// alarm, and re-bind the whole unbound prefix when quorum returns.
    DegradeAndAlarm,
}

/// Tuning knobs for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fault tolerance: the cluster spawns `3f + 1` nodes and needs
    /// `2f + 1` acknowledgements.
    pub f: usize,
    /// Simulated per-request latency of each node.
    pub latency: Duration,
    /// How long one round waits for acknowledgements before giving up
    /// on the silent nodes.
    pub deadline: Duration,
    /// Additional rounds attempted after the first misses quorum.
    pub retries: u32,
    /// Base backoff between rounds; doubled per retry, plus up to 50 %
    /// random jitter so restarted peers do not retry in lockstep.
    pub backoff: Duration,
    /// What to do when every round misses quorum.
    pub policy: QuorumPolicy,
}

impl ClusterConfig {
    /// Defaults for tolerance `f`: zero simulated latency, 1 s round
    /// deadline, 2 retries at 5 ms base backoff, fail-stop.
    pub fn new(f: usize) -> ClusterConfig {
        ClusterConfig {
            f,
            latency: Duration::ZERO,
            deadline: Duration::from_secs(1),
            retries: 2,
            backoff: Duration::from_millis(5),
            policy: QuorumPolicy::FailStop,
        }
    }
}

/// Degraded-mode status (see [`QuorumPolicy::DegradeAndAlarm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedStats {
    /// Whether the cluster is currently appending unbound entries.
    pub degraded: bool,
    /// Increments granted without quorum since the last re-bind.
    pub unbound: u64,
    /// Completed re-binds (degraded episodes that ended with quorum).
    pub rebinds: u64,
}

/// A request delivered to a node's worker thread.
enum Request {
    IncrementTo {
        target: u64,
        reply: channel::Sender<Option<CounterAck>>,
    },
    Read {
        reply: channel::Sender<Option<CounterAck>>,
    },
}

/// A quorum of counter nodes plus the local view.
pub struct Cluster {
    nodes: Vec<Arc<CounterNode>>,
    keys: Vec<[u8; 32]>,
    cfg: ClusterConfig,
    local: AtomicU64,
    counter_id: Vec<u8>,
    /// Per-node request channels into the worker threads.
    senders: Vec<channel::Sender<Request>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    degraded: AtomicBool,
    unbound: AtomicU64,
    rebinds: AtomicU64,
}

/// Serves one node's requests; exits when the cluster drops its
/// sender. Delivery runs through the `rote::node::deliver` failpoint
/// so tests can drop or delay individual messages.
fn worker_loop(node: Arc<CounterNode>, counter_id: Vec<u8>, rx: channel::Receiver<Request>) {
    loop {
        let req = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let dropped = plat::failpoint::check("rote::node::deliver").is_err();
        match req {
            Request::IncrementTo { target, reply } => {
                let ack = if dropped {
                    None
                } else {
                    node.increment_to(&counter_id, target)
                };
                // The requester may have moved on (deadline passed and
                // its reply channel is gone): a late ack is dropped, as
                // a late network packet would be.
                let _ = reply.send(ack);
            }
            Request::Read { reply } => {
                let ack = if dropped {
                    None
                } else {
                    node.read(&counter_id)
                };
                let _ = reply.send(ack);
            }
        }
    }
}

/// Exponential backoff with up to 50 % random jitter.
fn backoff_with_jitter(base: Duration, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
    if exp.is_zero() {
        return exp;
    }
    let mut b = [0u8; 8];
    plat::entropy::fill(&mut b);
    let r = u64::from_le_bytes(b);
    exp + Duration::from_micros(r % ((exp.as_micros() as u64) / 2 + 1))
}

impl Cluster {
    /// Builds a cluster tolerating `f` faults (spawning `3f + 1` nodes)
    /// with per-request `latency` and default hardening knobs
    /// (see [`ClusterConfig::new`]).
    ///
    /// # Errors
    ///
    /// As [`Cluster::with_config`].
    pub fn new(f: usize, latency: Duration, counter_id: &[u8]) -> Result<Cluster, RoteError> {
        let mut cfg = ClusterConfig::new(f);
        cfg.latency = latency;
        Self::with_config(cfg, counter_id)
    }

    /// Builds a cluster from an explicit configuration.
    ///
    /// # Errors
    ///
    /// [`RoteError::BadConfig`] on a zero round deadline (every round
    /// would time out before any node could answer).
    pub fn with_config(cfg: ClusterConfig, counter_id: &[u8]) -> Result<Cluster, RoteError> {
        if cfg.deadline.is_zero() {
            return Err(RoteError::BadConfig(
                "round deadline must be non-zero".into(),
            ));
        }
        let n = 3 * cfg.f + 1;
        let nodes: Vec<Arc<CounterNode>> = (0..n)
            .map(|i| {
                // Channel keys from the (simulated) attestation
                // ceremony at cluster setup.
                let mut key = [0u8; 32];
                key[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
                key[8..16].copy_from_slice(&(counter_id.len() as u64).to_le_bytes());
                Arc::new(CounterNode::new(i, &key, cfg.latency))
            })
            .collect();
        let keys = nodes.iter().map(|n| n.channel_key()).collect();
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for node in &nodes {
            let (tx, rx) = channel::unbounded();
            let node = Arc::clone(node);
            let id = counter_id.to_vec();
            senders.push(tx);
            workers.push(std::thread::spawn(move || worker_loop(node, id, rx)));
        }
        Ok(Cluster {
            nodes,
            keys,
            cfg,
            local: AtomicU64::new(0),
            counter_id: counter_id.to_vec(),
            senders,
            workers,
            degraded: AtomicBool::new(false),
            unbound: AtomicU64::new(0),
            rebinds: AtomicU64::new(0),
        })
    }

    /// Quorum size (`2f + 1`).
    pub fn quorum(&self) -> usize {
        2 * self.cfg.f + 1
    }

    /// Number of nodes (`3f + 1`).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Access to a node for failure injection in tests/benches.
    pub fn node(&self, i: usize) -> &Arc<CounterNode> {
        &self.nodes[i]
    }

    /// Current locally-known counter value.
    pub fn current(&self) -> u64 {
        self.local.load(Ordering::SeqCst)
    }

    /// Degraded-mode status.
    pub fn stats(&self) -> DegradedStats {
        DegradedStats {
            degraded: self.degraded.load(Ordering::SeqCst),
            unbound: self.unbound.load(Ordering::SeqCst),
            rebinds: self.rebinds.load(Ordering::SeqCst),
        }
    }

    /// Whether the cluster is appending unbound entries (quorum lost
    /// under [`QuorumPolicy::DegradeAndAlarm`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// One concurrent fan-out round for `target`; returns the valid
    /// acks gathered before quorum, all-replied, or the deadline.
    fn increment_round(&self, target: u64) -> Vec<CounterAck> {
        if plat::failpoint::check("rote::round").is_err() {
            return Vec::new();
        }
        let (tx, rx) = channel::unbounded();
        for s in &self.senders {
            let _ = s.send(Request::IncrementTo {
                target,
                reply: tx.clone(),
            });
        }
        drop(tx);
        self.collect(&rx, Some(target))
    }

    /// One concurrent read round; collects every answer that arrives
    /// before the deadline.
    fn read_round(&self) -> Vec<CounterAck> {
        if plat::failpoint::check("rote::round").is_err() {
            return Vec::new();
        }
        let (tx, rx) = channel::unbounded();
        for s in &self.senders {
            let _ = s.send(Request::Read { reply: tx.clone() });
        }
        drop(tx);
        self.collect(&rx, None)
    }

    /// Drains one round's replies. With `expect = Some(target)` the
    /// collection stops as soon as a quorum of valid acks for `target`
    /// is in hand; with `None` (recovery reads) it waits for every
    /// node or the deadline, since more answers sharpen the `f+1`-th
    /// highest estimate.
    fn collect(
        &self,
        rx: &channel::Receiver<Option<CounterAck>>,
        expect: Option<u64>,
    ) -> Vec<CounterAck> {
        let deadline = Instant::now() + self.cfg.deadline;
        let mut acks = Vec::new();
        let mut replies = 0usize;
        while replies < self.size() {
            if expect.is_some() && acks.len() >= self.quorum() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Some(ack)) => {
                    replies += 1;
                    let expected = expect.unwrap_or(ack.value);
                    if self.verify_ack(&ack, expected) {
                        acks.push(ack);
                    }
                }
                Ok(None) => replies += 1,
                Err(_) => break,
            }
        }
        acks
    }

    /// Runs `round` up to `1 + retries` times with jittered backoff.
    fn with_retries(
        &self,
        round: impl Fn(&Cluster) -> Vec<CounterAck>,
    ) -> Result<Vec<CounterAck>, RoteError> {
        let mut best = 0usize;
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                std::thread::sleep(backoff_with_jitter(self.cfg.backoff, attempt));
            }
            let acks = round(self);
            if acks.len() >= self.quorum() {
                return Ok(acks);
            }
            best = best.max(acks.len());
        }
        Err(RoteError::NoQuorum {
            acks: best,
            needed: self.quorum(),
        })
    }

    /// Increments the counter, collecting a quorum of signed acks.
    ///
    /// Fan-out is concurrent, so the call pays roughly one node
    /// latency, bounded by the round deadline times retries.
    ///
    /// # Errors
    ///
    /// Under [`QuorumPolicy::FailStop`], [`RoteError::NoQuorum`] when
    /// every round misses quorum; the local value is not advanced.
    /// Under [`QuorumPolicy::DegradeAndAlarm`] quorum loss is not an
    /// error: the increment succeeds with an **empty ack vector**
    /// (unbound — see [`Cluster::stats`]).
    pub fn increment(&self) -> Result<(u64, Vec<CounterAck>), RoteError> {
        let target = self.local.load(Ordering::SeqCst) + 1;
        let started = Instant::now();
        let outcome = self.with_retries(|c| c.increment_round(target));
        rote_metrics().round_ns.record_duration(started.elapsed());
        match outcome {
            Ok(acks) => {
                self.local.store(target, Ordering::SeqCst);
                if self.degraded.swap(false, Ordering::SeqCst) {
                    // Acks are for the absolute value `target`, so a
                    // quorum at `target` vouches for the whole unbound
                    // prefix below it: the episode ends here.
                    self.unbound.store(0, Ordering::SeqCst);
                    self.rebinds.fetch_add(1, Ordering::SeqCst);
                    rote_metrics().rebinds.inc();
                }
                rote_metrics().quorum_state.set(1);
                Ok((target, acks))
            }
            Err(RoteError::NoQuorum { acks, needed }) => match self.cfg.policy {
                QuorumPolicy::FailStop => Err(RoteError::NoQuorum { acks, needed }),
                QuorumPolicy::DegradeAndAlarm => {
                    self.local.store(target, Ordering::SeqCst);
                    self.degraded.store(true, Ordering::SeqCst);
                    self.unbound.fetch_add(1, Ordering::SeqCst);
                    rote_metrics().unbound_appends.inc();
                    rote_metrics().quorum_state.set(0);
                    Ok((target, Vec::new()))
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Attempts to bind the current local value to a quorum without
    /// incrementing — the explicit way out of degraded mode when no
    /// new appends are arriving. Returns `Ok(None)` when not degraded.
    ///
    /// # Errors
    ///
    /// [`RoteError::NoQuorum`] when the quorum is still unavailable;
    /// the cluster stays degraded.
    pub fn rebind(&self) -> Result<Option<Vec<CounterAck>>, RoteError> {
        if !self.degraded.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let target = self.local.load(Ordering::SeqCst);
        let started = Instant::now();
        let outcome = self.with_retries(|c| c.increment_round(target));
        rote_metrics().round_ns.record_duration(started.elapsed());
        let acks = outcome?;
        self.degraded.store(false, Ordering::SeqCst);
        self.unbound.store(0, Ordering::SeqCst);
        self.rebinds.fetch_add(1, Ordering::SeqCst);
        rote_metrics().rebinds.inc();
        rote_metrics().quorum_state.set(1);
        Ok(Some(acks))
    }

    /// Reads the highest value a quorum can attest to (recovery after
    /// restart): queries all nodes and takes the `f+1`-th highest, so
    /// at least one honest node stored it.
    ///
    /// # Errors
    ///
    /// [`RoteError::NoQuorum`] when fewer than `2f + 1` nodes respond
    /// across all retries; [`RoteError::Transport`] when the recovery
    /// path itself fails (fault injection).
    pub fn recover(&self) -> Result<u64, RoteError> {
        plat::failpoint::check("rote::recover").map_err(|e| RoteError::Transport(e.to_string()))?;
        let acks = self.with_retries(|c| c.read_round())?;
        let mut values: Vec<u64> = acks.iter().map(|a| a.value).collect();
        values.sort_unstable_by(|a, b| b.cmp(a));
        // The (f+1)-th highest value is vouched for by >= 1 honest node.
        let v = values[self.cfg.f.min(values.len() - 1)];
        self.local.store(v, Ordering::SeqCst);
        Ok(v)
    }

    fn verify_ack(&self, ack: &CounterAck, expected: u64) -> bool {
        if ack.value != expected || ack.node >= self.keys.len() {
            return false;
        }
        let payload = CounterNode::mac_payload(&self.counter_id, ack.value);
        HmacSha256::verify(&self.keys[ack.node], &payload, &ack.mac)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Dropping the senders disconnects every worker's channel;
        // the workers observe it and exit.
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(f: usize) -> Cluster {
        Cluster::new(f, Duration::ZERO, b"audit-log").unwrap()
    }

    #[test]
    fn sizes_follow_3f_plus_1() {
        let c = cluster(1);
        assert_eq!(c.size(), 4);
        assert_eq!(c.quorum(), 3);
        let c = cluster(2);
        assert_eq!(c.size(), 7);
        assert_eq!(c.quorum(), 5);
    }

    #[test]
    fn increments_are_monotonic() {
        let c = cluster(1);
        for expect in 1..=10u64 {
            let (v, acks) = c.increment().unwrap();
            assert_eq!(v, expect);
            assert!(acks.len() >= c.quorum());
        }
        assert_eq!(c.current(), 10);
    }

    #[test]
    fn tolerates_f_failures() {
        let c = cluster(1);
        c.node(0).set_down(true);
        let (v, _) = c.increment().unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn fails_beyond_f_failures() {
        let c = cluster(1);
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        assert!(matches!(c.increment(), Err(RoteError::NoQuorum { .. })));
        assert_eq!(c.current(), 0, "local value must not advance");
    }

    #[test]
    fn recovery_resists_lying_minority() {
        let c = cluster(1);
        for _ in 0..5 {
            c.increment().unwrap();
        }
        // A lying node stops persisting; others hold 5.
        c.node(0).set_lies(true);
        // Simulate restart recovery: the quorum still attests 5.
        assert_eq!(c.recover().unwrap(), 5);
    }

    #[test]
    fn rollback_attack_detected_via_recovery() {
        let c = cluster(1);
        for _ in 0..7 {
            c.increment().unwrap();
        }
        // An attacker presenting an old log would need the cluster to
        // attest a lower value; recovery still returns 7.
        let recovered = c.recover().unwrap();
        assert_eq!(recovered, 7);
    }

    #[test]
    fn recovery_needs_quorum() {
        let c = cluster(1);
        c.increment().unwrap();
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        assert!(matches!(c.recover(), Err(RoteError::NoQuorum { .. })));
    }

    #[test]
    fn fan_out_pays_max_latency_not_sum() {
        let c = Cluster::new(1, Duration::from_millis(20), b"x").unwrap();
        let start = std::time::Instant::now();
        c.increment().unwrap();
        let elapsed = start.elapsed();
        // Concurrent fan-out: one node latency, not quorum * latency.
        assert!(
            elapsed >= Duration::from_millis(20),
            "latency is still paid"
        );
        assert!(
            elapsed < Duration::from_millis(60),
            "3 node latencies paid sequentially ({elapsed:?}): fan-out is not concurrent"
        );
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let mut cfg = ClusterConfig::new(1);
        cfg.deadline = Duration::ZERO;
        assert!(matches!(
            Cluster::with_config(cfg, b"x"),
            Err(RoteError::BadConfig(_))
        ));
    }

    #[test]
    fn distinct_counter_ids_isolated() {
        let a = Cluster::new(1, Duration::ZERO, b"log-a").unwrap();
        let b = Cluster::new(1, Duration::ZERO, b"log-b").unwrap();
        a.increment().unwrap();
        assert_eq!(a.current(), 1);
        assert_eq!(b.current(), 0);
    }

    #[test]
    fn degrade_and_alarm_keeps_appending_and_rebinds() {
        let mut cfg = ClusterConfig::new(1);
        cfg.policy = QuorumPolicy::DegradeAndAlarm;
        cfg.retries = 0;
        cfg.backoff = Duration::ZERO;
        let c = Cluster::with_config(cfg, b"audit-log").unwrap();
        c.increment().unwrap();
        assert!(!c.is_degraded());
        // Quorum lost: appends continue, unbound.
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        let (v, acks) = c.increment().unwrap();
        assert_eq!(v, 2);
        assert!(acks.is_empty(), "unbound entries carry no acks");
        c.increment().unwrap();
        let s = c.stats();
        assert!(s.degraded);
        assert_eq!(s.unbound, 2);
        // Quorum returns: the next increment re-binds the whole prefix.
        c.node(0).set_down(false);
        c.node(1).set_down(false);
        let (v, acks) = c.increment().unwrap();
        assert_eq!(v, 4);
        assert!(acks.len() >= c.quorum());
        let s = c.stats();
        assert!(!s.degraded);
        assert_eq!(s.unbound, 0);
        assert_eq!(s.rebinds, 1);
    }

    #[test]
    fn explicit_rebind_clears_degraded_mode() {
        let mut cfg = ClusterConfig::new(1);
        cfg.policy = QuorumPolicy::DegradeAndAlarm;
        cfg.retries = 0;
        cfg.backoff = Duration::ZERO;
        let c = Cluster::with_config(cfg, b"audit-log").unwrap();
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        c.increment().unwrap();
        assert!(c.is_degraded());
        // Still no quorum: rebind fails, mode persists.
        assert!(c.rebind().is_err());
        assert!(c.is_degraded());
        c.node(0).set_down(false);
        c.node(1).set_down(false);
        let acks = c.rebind().unwrap().expect("was degraded");
        assert!(acks.len() >= c.quorum());
        assert!(!c.is_degraded());
        assert_eq!(c.stats().rebinds, 1);
        // Not degraded: rebind is a no-op.
        assert!(c.rebind().unwrap().is_none());
    }

    #[test]
    fn failstop_counter_resumes_after_quorum_returns() {
        let c = cluster(1);
        c.increment().unwrap();
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        assert!(c.increment().is_err());
        c.node(0).set_down(false);
        c.node(1).set_down(false);
        let (v, _) = c.increment().unwrap();
        assert_eq!(v, 2, "failed increment did not burn a value");
    }
}

#![warn(missing_docs)]
//! A ROTE-style distributed monotonic counter (rollback protection).
//!
//! SGX's hardware counters are too slow and wear out (§5.1; see
//! `libseal_sgxsim::counter`), so LibSEAL adopts the protocol of ROTE
//! [Matetic et al., 2017]: each counter increment is replicated to `n =
//! 3f + 1` counter nodes and acknowledged by a quorum of `2f + 1`,
//! tolerating `f` malicious or crashed nodes. An attacker who rolls the
//! local log back must also roll back a quorum of independent nodes.
//!
//! Nodes here are in-process objects with authenticated responses and
//! failure injection; in the paper's deployment they are other LibSEAL
//! instances owned by the provider. As in ROTE, counter messages are
//! authenticated with per-channel MAC keys established once at cluster
//! setup (after mutual attestation), not per-message signatures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libseal_crypto::hmac::HmacSha256;

/// Errors from the counter protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoteError {
    /// Fewer than a quorum of valid acknowledgements.
    NoQuorum {
        /// Valid acknowledgements received.
        acks: usize,
        /// Required quorum size.
        needed: usize,
    },
    /// The cluster configuration is invalid.
    BadConfig(String),
}

impl std::fmt::Display for RoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoteError::NoQuorum { acks, needed } => {
                write!(f, "no quorum: {acks} acks, {needed} needed")
            }
            RoteError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for RoteError {}

/// An authenticated acknowledgement of a counter value.
#[derive(Clone, Debug)]
pub struct CounterAck {
    /// Node index.
    pub node: usize,
    /// Acknowledged counter value.
    pub value: u64,
    /// MAC over (counter-id, value) under the node's channel key.
    pub mac: [u8; 32],
}

/// One counter node (runs inside another enclave in the paper's
/// deployment).
pub struct CounterNode {
    index: usize,
    mac_key: [u8; 32],
    value: AtomicU64,
    /// Simulated network + processing latency per request.
    latency: Duration,
    /// Failure injection: node ignores requests while true.
    down: AtomicBool,
    /// Byzantine injection: node acknowledges without storing.
    lies: AtomicBool,
}

impl CounterNode {
    fn mac_payload(counter_id: &[u8], value: u64) -> Vec<u8> {
        let mut p = b"rote-ack:".to_vec();
        p.extend_from_slice(counter_id);
        p.extend_from_slice(&value.to_le_bytes());
        p
    }

    /// Creates a node whose attested channel uses `mac_key`.
    pub fn new(index: usize, mac_key: &[u8; 32], latency: Duration) -> Self {
        CounterNode {
            index,
            mac_key: *mac_key,
            value: AtomicU64::new(0),
            latency,
            down: AtomicBool::new(false),
            lies: AtomicBool::new(false),
        }
    }

    /// The channel MAC key (held by the requesting enclave after the
    /// attestation ceremony).
    pub fn channel_key(&self) -> [u8; 32] {
        self.mac_key
    }

    /// Takes the node down (crash injection).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Makes the node acknowledge without persisting (byzantine).
    pub fn set_lies(&self, lies: bool) {
        self.lies.store(lies, Ordering::SeqCst);
    }

    /// Handles an increment-to request; returns a signed ack, or None
    /// when down or the request would roll the counter back.
    pub fn increment_to(&self, counter_id: &[u8], target: u64) -> Option<CounterAck> {
        if self.down.load(Ordering::SeqCst) {
            return None;
        }
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if !self.lies.load(Ordering::SeqCst) {
            // Monotonicity: never move backwards.
            let mut cur = self.value.load(Ordering::SeqCst);
            loop {
                if target <= cur {
                    break;
                }
                match self.value.compare_exchange(
                    cur,
                    target,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        Some(CounterAck {
            node: self.index,
            value: target,
            mac: HmacSha256::mac(&self.mac_key, &Self::mac_payload(counter_id, target)),
        })
    }

    /// Reads the node's stored value.
    pub fn read(&self, counter_id: &[u8]) -> Option<CounterAck> {
        if self.down.load(Ordering::SeqCst) {
            return None;
        }
        let v = self.value.load(Ordering::SeqCst);
        Some(CounterAck {
            node: self.index,
            value: v,
            mac: HmacSha256::mac(&self.mac_key, &Self::mac_payload(counter_id, v)),
        })
    }
}

/// A quorum of counter nodes plus the local view.
pub struct Cluster {
    nodes: Vec<Arc<CounterNode>>,
    keys: Vec<[u8; 32]>,
    f: usize,
    local: AtomicU64,
    counter_id: Vec<u8>,
}

impl Cluster {
    /// Builds a cluster tolerating `f` faults (spawning `3f + 1` nodes)
    /// with per-request `latency`.
    ///
    /// # Errors
    ///
    /// Never fails for `f >= 0`; kept fallible for future transports.
    pub fn new(f: usize, latency: Duration, counter_id: &[u8]) -> Result<Cluster, RoteError> {
        let n = 3 * f + 1;
        let nodes: Vec<Arc<CounterNode>> = (0..n)
            .map(|i| {
                // Channel keys from the (simulated) attestation
                // ceremony at cluster setup.
                let mut key = [0u8; 32];
                key[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
                key[8..16].copy_from_slice(&(counter_id.len() as u64).to_le_bytes());
                Arc::new(CounterNode::new(i, &key, latency))
            })
            .collect();
        let keys = nodes.iter().map(|n| n.channel_key()).collect();
        Ok(Cluster {
            nodes,
            keys,
            f,
            local: AtomicU64::new(0),
            counter_id: counter_id.to_vec(),
        })
    }

    /// Quorum size (`2f + 1`).
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Number of nodes (`3f + 1`).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Access to a node for failure injection in tests/benches.
    pub fn node(&self, i: usize) -> &Arc<CounterNode> {
        &self.nodes[i]
    }

    /// Current locally-known counter value.
    pub fn current(&self) -> u64 {
        self.local.load(Ordering::SeqCst)
    }

    /// Increments the counter, collecting a quorum of signed acks.
    ///
    /// # Errors
    ///
    /// [`RoteError::NoQuorum`] when too many nodes fail to respond
    /// validly; the local value is not advanced in that case.
    pub fn increment(&self) -> Result<(u64, Vec<CounterAck>), RoteError> {
        let target = self.local.load(Ordering::SeqCst) + 1;
        let mut acks = Vec::new();
        for node in &self.nodes {
            if let Some(ack) = node.increment_to(&self.counter_id, target) {
                if self.verify_ack(&ack, target) {
                    acks.push(ack);
                }
            }
            if acks.len() >= self.quorum() {
                break;
            }
        }
        if acks.len() < self.quorum() {
            return Err(RoteError::NoQuorum {
                acks: acks.len(),
                needed: self.quorum(),
            });
        }
        self.local.store(target, Ordering::SeqCst);
        Ok((target, acks))
    }

    /// Reads the highest value a quorum can attest to (recovery after
    /// restart): queries all nodes and takes the `f+1`-th highest, so
    /// at least one honest node stored it.
    ///
    /// # Errors
    ///
    /// [`RoteError::NoQuorum`] when fewer than `2f + 1` nodes respond.
    pub fn recover(&self) -> Result<u64, RoteError> {
        let mut values = Vec::new();
        for node in &self.nodes {
            if let Some(ack) = node.read(&self.counter_id) {
                if self.verify_ack(&ack, ack.value) {
                    values.push(ack.value);
                }
            }
        }
        if values.len() < self.quorum() {
            return Err(RoteError::NoQuorum {
                acks: values.len(),
                needed: self.quorum(),
            });
        }
        values.sort_unstable_by(|a, b| b.cmp(a));
        // The (f+1)-th highest value is vouched for by >= 1 honest node.
        let v = values[self.f.min(values.len() - 1)];
        self.local.store(v, Ordering::SeqCst);
        Ok(v)
    }

    fn verify_ack(&self, ack: &CounterAck, expected: u64) -> bool {
        if ack.value != expected || ack.node >= self.keys.len() {
            return false;
        }
        let payload = CounterNode::mac_payload(&self.counter_id, ack.value);
        HmacSha256::verify(&self.keys[ack.node], &payload, &ack.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(f: usize) -> Cluster {
        Cluster::new(f, Duration::ZERO, b"audit-log").unwrap()
    }

    #[test]
    fn sizes_follow_3f_plus_1() {
        let c = cluster(1);
        assert_eq!(c.size(), 4);
        assert_eq!(c.quorum(), 3);
        let c = cluster(2);
        assert_eq!(c.size(), 7);
        assert_eq!(c.quorum(), 5);
    }

    #[test]
    fn increments_are_monotonic() {
        let c = cluster(1);
        for expect in 1..=10u64 {
            let (v, acks) = c.increment().unwrap();
            assert_eq!(v, expect);
            assert!(acks.len() >= c.quorum());
        }
        assert_eq!(c.current(), 10);
    }

    #[test]
    fn tolerates_f_failures() {
        let c = cluster(1);
        c.node(0).set_down(true);
        let (v, _) = c.increment().unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn fails_beyond_f_failures() {
        let c = cluster(1);
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        assert!(matches!(c.increment(), Err(RoteError::NoQuorum { .. })));
        assert_eq!(c.current(), 0, "local value must not advance");
    }

    #[test]
    fn recovery_resists_lying_minority() {
        let c = cluster(1);
        for _ in 0..5 {
            c.increment().unwrap();
        }
        // A lying node stops persisting; others hold 5.
        c.node(0).set_lies(true);
        // Simulate restart recovery: the quorum still attests 5.
        assert_eq!(c.recover().unwrap(), 5);
    }

    #[test]
    fn rollback_attack_detected_via_recovery() {
        let c = cluster(1);
        for _ in 0..7 {
            c.increment().unwrap();
        }
        // An attacker presenting an old log would need the cluster to
        // attest a lower value; recovery still returns 7.
        let recovered = c.recover().unwrap();
        assert_eq!(recovered, 7);
    }

    #[test]
    fn recovery_needs_quorum() {
        let c = cluster(1);
        c.increment().unwrap();
        c.node(0).set_down(true);
        c.node(1).set_down(true);
        assert!(matches!(c.recover(), Err(RoteError::NoQuorum { .. })));
    }

    #[test]
    fn latency_is_paid_per_increment() {
        let c = Cluster::new(1, Duration::from_millis(2), b"x").unwrap();
        let start = std::time::Instant::now();
        c.increment().unwrap();
        // Quorum of 3 sequential requests at 2 ms each.
        assert!(start.elapsed() >= Duration::from_millis(6));
    }

    #[test]
    fn distinct_counter_ids_isolated() {
        let a = Cluster::new(1, Duration::ZERO, b"log-a").unwrap();
        let b = Cluster::new(1, Duration::ZERO, b"log-b").unwrap();
        a.increment().unwrap();
        assert_eq!(a.current(), 1);
        assert_eq!(b.current(), 0);
    }
}

//! Fault-injected quorum protocol tests.
//!
//! Every test opens a `plat::failpoint::scenario()` first: the
//! scenario is a global lock, so these tests serialize against each
//! other (and against any other fault-injected suite in this process)
//! instead of corrupting each other's armed faults.

use std::time::Duration;

use libseal_rote::{Cluster, ClusterConfig, QuorumPolicy, RoteError};
use plat::failpoint::{self, FaultSpec};

fn fast_config(f: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(f);
    cfg.deadline = Duration::from_millis(200);
    cfg.backoff = Duration::from_millis(1);
    cfg
}

#[test]
fn dropped_node_messages_within_f_are_tolerated() {
    let s = failpoint::scenario();
    let c = Cluster::with_config(fast_config(1), b"q").unwrap();
    // Drop exactly one node's delivery in the round: 3 of 4 ack.
    s.set("rote::node::deliver", FaultSpec::error().times(1));
    let (v, acks) = c.increment().unwrap();
    assert_eq!(v, 1);
    assert!(acks.len() >= c.quorum());
    assert!(
        s.hits("rote::node::deliver") >= 4,
        "fan-out reached every node"
    );
}

#[test]
fn lost_round_is_retried_until_quorum() {
    let s = failpoint::scenario();
    let c = Cluster::with_config(fast_config(1), b"q").unwrap();
    // The first whole round vanishes (e.g. a network partition); the
    // retry goes through.
    s.set("rote::round", FaultSpec::error().times(1));
    let (v, acks) = c.increment().unwrap();
    assert_eq!(v, 1);
    assert!(acks.len() >= c.quorum());
    assert_eq!(s.hits("rote::round"), 2, "one failed round + one retry");
}

#[test]
fn failstop_reports_no_quorum_when_every_round_is_lost() {
    let s = failpoint::scenario();
    let mut cfg = fast_config(1);
    cfg.retries = 1;
    let c = Cluster::with_config(cfg, b"q").unwrap();
    s.set("rote::round", FaultSpec::error());
    match c.increment() {
        Err(RoteError::NoQuorum { acks, needed }) => {
            assert_eq!(acks, 0);
            assert_eq!(needed, 3);
        }
        other => panic!("expected NoQuorum, got {other:?}"),
    }
    assert_eq!(c.current(), 0, "local value must not advance");
    assert_eq!(s.hits("rote::round"), 2, "initial round + 1 retry");
}

#[test]
fn degrade_and_alarm_survives_total_message_loss() {
    let s = failpoint::scenario();
    let mut cfg = fast_config(1);
    cfg.retries = 0;
    cfg.policy = QuorumPolicy::DegradeAndAlarm;
    let c = Cluster::with_config(cfg, b"q").unwrap();
    s.set("rote::node::deliver", FaultSpec::error());
    let (v, acks) = c.increment().unwrap();
    assert_eq!(v, 1);
    assert!(acks.is_empty());
    assert!(c.is_degraded());
    // Messages flow again: the next increment re-binds.
    s.unset("rote::node::deliver");
    let (v, acks) = c.increment().unwrap();
    assert_eq!(v, 2);
    assert!(acks.len() >= c.quorum());
    assert!(!c.is_degraded());
    assert_eq!(c.stats().rebinds, 1);
}

#[test]
fn slow_nodes_miss_the_deadline_but_quorum_proceeds() {
    let s = failpoint::scenario();
    let mut cfg = fast_config(1);
    cfg.deadline = Duration::from_millis(100);
    let c = Cluster::with_config(cfg, b"q").unwrap();
    // One node is pathologically slow; the other three answer in time.
    s.set(
        "rote::node::deliver",
        FaultSpec::delay(Duration::from_millis(300)).times(1),
    );
    let start = std::time::Instant::now();
    let (v, acks) = c.increment().unwrap();
    assert_eq!(v, 1);
    assert!(acks.len() >= c.quorum());
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "quorum did not wait for the straggler"
    );
}

#[test]
fn recovery_transport_failure_is_explicit() {
    let s = failpoint::scenario();
    let c = Cluster::with_config(fast_config(1), b"q").unwrap();
    c.increment().unwrap();
    s.set("rote::recover", FaultSpec::error());
    assert!(matches!(c.recover(), Err(RoteError::Transport(_))));
    s.unset("rote::recover");
    assert_eq!(c.recover().unwrap(), 1);
}

#[test]
fn simulated_crash_fails_increments_until_recovery() {
    let s = failpoint::scenario();
    let mut cfg = fast_config(1);
    cfg.retries = 0;
    let c = Cluster::with_config(cfg, b"q").unwrap();
    c.increment().unwrap();
    s.set("rote::round", FaultSpec::crash());
    assert!(c.increment().is_err());
    // Crash latch: everything fails until the scenario resets (the
    // "process" restarts).
    assert!(c.increment().is_err());
    s.reset();
    let (v, _) = c.increment().unwrap();
    assert_eq!(v, 2);
}

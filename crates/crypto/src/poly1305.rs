//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with 26-bit limbs in `u32`s (five limbs), using `u64`
//! intermediates — the classic "floodyberry"-style reference layout.

/// Incremental Poly1305 MAC.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates an authenticator keyed with the 32-byte one-time key.
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per the spec.
        let r0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let r1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let r2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let r3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
        let r = [
            r0 & 0x3ffffff,
            ((r0 >> 26) | (r1 << 6)) & 0x3ffff03,
            ((r1 >> 20) | (r2 << 12)) & 0x3ffc0ff,
            ((r2 >> 14) | (r3 << 18)) & 0x3f03fff,
            (r3 >> 8) & 0x00fffff,
        ];
        let pad = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];
        Poly1305 {
            r,
            h: [0; 5],
            pad,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let hibit: u32 = if partial { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        self.h[0] = self.h[0].wrapping_add(t0 & 0x3ffffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x3ffffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x3ffffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x3ffffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(u64::from);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        let h0 = (d0 & 0x3ffffff) as u32;
        d1 += c;
        c = d1 >> 26;
        let h1 = (d1 & 0x3ffffff) as u32;
        d2 += c;
        c = d2 >> 26;
        let h2 = (d2 & 0x3ffffff) as u32;
        d3 += c;
        c = d3 >> 26;
        let h3 = (d3 & 0x3ffffff) as u32;
        d4 += c;
        c = d4 >> 26;
        let h4 = (d4 & 0x3ffffff) as u32;
        d0 = u64::from(h0) + c * 5;
        c = d0 >> 26;
        let h0 = (d0 & 0x3ffffff) as u32;
        let h1 = h1.wrapping_add(c as u32);

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Absorbs message data.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, true);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        // Full carry propagation.
        let mut c: u32;
        c = h1 >> 26;
        h1 &= 0x3ffffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x3ffffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x3ffffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x3ffffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 += c;

        // Compute h + -p and select it if h >= p, in constant time.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x3ffffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x3ffffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x3ffffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x3ffffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        let mask = (g4 >> 31).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & mask);

        // Serialize h back to 128 bits.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // Add the pad (s) modulo 2^128.
        let mut acc: u64;
        acc = u64::from(w0) + u64::from(self.pad[0]);
        let o0 = acc as u32;
        acc = u64::from(w1) + u64::from(self.pad[1]) + (acc >> 32);
        let o1 = acc as u32;
        acc = u64::from(w2) + u64::from(self.pad[2]) + (acc >> 32);
        let o2 = acc as u32;
        acc = u64::from(w3) + u64::from(self.pad[3]) + (acc >> 32);
        let o3 = acc as u32;

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_le_bytes());
        out[4..8].copy_from_slice(&o1.to_le_bytes());
        out[8..12].copy_from_slice(&o2.to_le_bytes());
        out[12..16].copy_from_slice(&o3.to_le_bytes());
        out
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8; 32], data: &[u8]) -> [u8; 16] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 §A.3 test vector 2: all-zero key must give an all-zero tag.
    #[test]
    fn zero_key_zero_tag() {
        let key = [0u8; 32];
        let tag = Poly1305::mac(&key, &[0u8; 64]);
        assert_eq!(tag, [0u8; 16]);
    }

    // Hand-computed cases with r = 2, s = 0: a zero 16-byte block has
    // value 2^128, so h = 2^129 mod (2^130 - 5) = 2^129, and the tag is
    // 2^129 mod 2^128 = 0. With a leading 0x01 byte the block value is
    // 1 + 2^128, h = 2 + 2^129, tag = 2.
    #[test]
    fn hand_computed_r2() {
        let mut key = [0u8; 32];
        key[0] = 2; // r = 2 survives clamping
        let tag = Poly1305::mac(&key, &[0u8; 16]);
        assert_eq!(tag, [0u8; 16]);

        let mut msg = [0u8; 16];
        msg[0] = 1;
        let tag = Poly1305::mac(&key, &msg);
        let mut expected = [0u8; 16];
        expected[0] = 2;
        assert_eq!(tag, expected);
    }

    // The pad s is added modulo 2^128: r = 0 makes h = 0, so the tag
    // equals s verbatim.
    #[test]
    fn tag_equals_pad_when_r_zero() {
        let mut key = [0u8; 32];
        for (i, b) in key[16..].iter_mut().enumerate() {
            *b = i as u8 + 1;
        }
        let tag = Poly1305::mac(&key, b"arbitrary message content here!!");
        assert_eq!(&tag[..], &key[16..]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let data: Vec<u8> = (0..200u32).map(|i| (i * 3) as u8).collect();
        for chunk in [1usize, 5, 15, 16, 17, 50] {
            let mut p = Poly1305::new(&key);
            for c in data.chunks(chunk) {
                p.update(c);
            }
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "chunk={chunk}");
        }
    }
}

//! Ed25519 signatures (RFC 8032).
//!
//! Point arithmetic uses extended twisted-Edwards coordinates
//! `(X : Y : Z : T)` with `x = X/Z`, `y = Y/Z`, `xy = T/Z`. Secret
//! scalar multiplications run a uniform ladder with constant-time swaps.

use crate::fe25519::{constants, Fe};
use crate::scalar;
use crate::sha2::Sha512;
use crate::{ct, CryptoError, Result};

/// A point on the Edwards curve in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The identity element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point `B` (with `y = 4/5` and even `x`).
    pub fn basepoint() -> Point {
        use std::sync::OnceLock;
        static BASE: OnceLock<Point> = OnceLock::new();
        *BASE.get_or_init(|| {
            let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0: even x
            Point::decompress(&enc).expect("base point must decompress")
        })
    }

    /// Unified point addition (complete formula for twisted Edwards).
    #[must_use]
    pub fn add(&self, other: &Point) -> Point {
        let d2 = constants().d2;
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&d2).mul(&other.t);
        let d = self.z.mul(&other.z);
        let d = d.add(&d);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().mul_small(2);
        let h = a.add(&b);
        let xy = self.x.add(&self.y);
        let e = h.sub(&xy.square());
        let g = a.sub(&b);
        let f = c.add(&g);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    fn cswap(choice: u64, a: &mut Point, b: &mut Point) {
        Fe::cswap(choice, &mut a.x, &mut b.x);
        Fe::cswap(choice, &mut a.y, &mut b.y);
        Fe::cswap(choice, &mut a.z, &mut b.z);
        Fe::cswap(choice, &mut a.t, &mut b.t);
    }

    /// Scalar multiplication `[k]P` with a uniform double-and-add ladder.
    ///
    /// Runs in time independent of `k` (modulo cache effects), suitable
    /// for secret scalars.
    #[must_use]
    pub fn scalar_mul(&self, k: &[u8; 32]) -> Point {
        let mut r0 = Point::identity();
        let mut r1 = *self;
        for i in (0..256).rev() {
            let bit = ((k[i / 8] >> (i % 8)) & 1) as u64;
            Point::cswap(bit, &mut r0, &mut r1);
            r1 = r0.add(&r1);
            r0 = r0.double();
            Point::cswap(bit, &mut r0, &mut r1);
        }
        r0
    }

    /// Constant-time selection of `points[index]` (index 0 yields the
    /// identity), used by the fixed-base multiplication below.
    fn select(points: &[Point], index: usize) -> Point {
        let mut out = Point::identity();
        for (i, p) in points.iter().enumerate() {
            // mask = all-ones when i + 1 == index.
            let eq = ((i + 1) == index) as u64;
            let mask = eq.wrapping_neg();
            for (dst, src) in [
                (&mut out.x, &p.x),
                (&mut out.y, &p.y),
                (&mut out.z, &p.z),
                (&mut out.t, &p.t),
            ] {
                for k in 0..5 {
                    dst.0[k] = (dst.0[k] & !mask) | (src.0[k] & mask);
                }
            }
        }
        out
    }

    /// Fixed-base scalar multiplication `[k]B` using a precomputed
    /// table of 4-bit windows (64 windows x 15 odd multiples). Roughly
    /// 4-5x faster than the generic ladder; the per-window point is
    /// selected in constant time.
    #[must_use]
    pub fn scalar_mul_base(k: &[u8; 32]) -> Point {
        use std::sync::OnceLock;
        static TABLE: OnceLock<Vec<[Point; 15]>> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            let mut table = Vec::with_capacity(64);
            let mut window_base = Point::basepoint(); // 16^w * B
            for _ in 0..64 {
                let mut row: Vec<Point> = Vec::with_capacity(15);
                let mut acc = window_base;
                for _ in 0..15 {
                    row.push(acc);
                    acc = acc.add(&window_base);
                }
                let row: [Point; 15] = row.try_into().expect("15 entries");
                table.push(row);
                // Advance to the next window: multiply by 16.
                window_base = window_base.double().double().double().double();
            }
            table
        });
        let mut acc = Point::identity();
        for w in 0..64 {
            let byte = k[w / 2];
            let digit = if w % 2 == 0 { byte & 0x0f } else { byte >> 4 } as usize;
            let term = Point::select(&table[w], digit);
            acc = acc.add(&term);
        }
        acc
    }

    /// Compresses to the 32-byte RFC 8032 encoding.
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses an RFC 8032 point encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] when the encoding does not
    /// name a curve point.
    pub fn decompress(enc: &[u8; 32]) -> Result<Point> {
        let sign = enc[31] >> 7;
        let y = Fe::from_bytes(enc);
        let c = constants();
        let y2 = y.square();
        let u = y2.sub(&Fe::ONE);
        let v = c.d.mul(&y2).add(&Fe::ONE);

        // x = u v^3 (u v^7)^((p-5)/8); then fix up by sqrt(-1) if needed.
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());

        let vxx = v.mul(&x.square());
        if !vxx.ct_eq(&u) {
            if vxx.ct_eq(&u.neg()) {
                x = x.mul(&c.sqrt_m1);
            } else {
                return Err(CryptoError::InvalidPoint);
            }
        }
        if x.is_zero() && sign == 1 {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Ok(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(&y),
        })
    }

    /// Whether two points are equal (projective comparison).
    #[must_use]
    pub fn equals(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  <=>  x1*z2 == x2*z1, same for y.
        let a = self.x.mul(&other.z);
        let b = other.x.mul(&self.z);
        let c = self.y.mul(&other.z);
        let d = other.y.mul(&self.z);
        a.ct_eq(&b) && c.ct_eq(&d)
    }
}

/// An Ed25519 signing key (32-byte seed plus cached expansion).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: [u8; 32],
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let h = Sha512::digest(seed);
        let mut scalar = [0u8; 32];
        scalar.copy_from_slice(&h[..32]);
        scalar[0] &= 248;
        scalar[31] &= 63;
        scalar[31] |= 64;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public = Point::scalar_mul_base(&scalar).compress();
        SigningKey {
            seed: *seed,
            scalar,
            prefix,
            public,
        }
    }

    /// Generates a key from the provided randomness source.
    pub fn generate(rng: &mut dyn FnMut(&mut [u8])) -> SigningKey {
        let mut seed = [0u8; 32];
        rng(&mut seed);
        SigningKey::from_seed(&seed)
    }

    /// The 32-byte seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding verifying (public) key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.public }
    }

    /// Signs `message`, returning the 64-byte signature `R || S`.
    pub fn sign(&self, message: &[u8]) -> [u8; 64] {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = scalar::reduce512(&h.finalize());
        let r_point = Point::scalar_mul_base(&r).compress();

        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&self.public);
        h.update(message);
        let k = scalar::reduce512(&h.finalize());
        let s = scalar::mul_add(&k, &self.scalar, &r);

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s);
        sig
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret material.
        write!(f, "SigningKey(public = {:02x?}...)", &self.public[..4])
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Wraps a 32-byte compressed public key.
    pub fn from_bytes(bytes: &[u8; 32]) -> VerifyingKey {
        VerifyingKey { bytes: *bytes }
    }

    /// The compressed public key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadSignature`] on any verification failure,
    /// including malformed points and non-canonical `S`.
    pub fn verify(&self, message: &[u8], signature: &[u8; 64]) -> Result<()> {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&signature[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&signature[32..]);

        if !scalar::is_canonical(&s_bytes) {
            return Err(CryptoError::BadSignature);
        }
        let a = Point::decompress(&self.bytes).map_err(|_| CryptoError::BadSignature)?;
        let r = Point::decompress(&r_bytes).map_err(|_| CryptoError::BadSignature)?;

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.bytes);
        h.update(message);
        let k = scalar::reduce512(&h.finalize());

        // Check [S]B == R + [k]A.
        let lhs = Point::scalar_mul_base(&s_bytes);
        let rhs = r.add(&a.scalar_mul(&k));
        if lhs.equals(&rhs) && ct::eq(&r.compress(), &r_bytes) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex<const N: usize>(s: &str) -> [u8; N] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed: [u8; 32] =
            unhex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.verifying_key().as_bytes(),
            &unhex::<32>("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = key.sign(b"");
        let expected: [u8; 64] = unhex(
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        );
        assert_eq!(sig.to_vec(), expected.to_vec());
        key.verifying_key().verify(b"", &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 2 (one byte).
    #[test]
    fn rfc8032_test2() {
        let seed: [u8; 32] =
            unhex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.verifying_key().as_bytes(),
            &unhex::<32>("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let msg = [0x72u8];
        let sig = key.sign(&msg);
        let expected: [u8; 64] = unhex(
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        );
        assert_eq!(sig.to_vec(), expected.to_vec());
        key.verifying_key().verify(&msg, &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 3 (two bytes).
    #[test]
    fn rfc8032_test3() {
        let seed: [u8; 32] =
            unhex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
        let key = SigningKey::from_seed(&seed);
        let msg = unhex::<2>("af82");
        let sig = key.sign(&msg);
        let expected: [u8; 64] = unhex(
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        );
        assert_eq!(sig.to_vec(), expected.to_vec());
        key.verifying_key().verify(&msg, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"hello");
        assert!(key.verifying_key().verify(b"hellp", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let mut sig = key.sign(b"hello");
        sig[10] ^= 1;
        assert!(key.verifying_key().verify(b"hello", &sig).is_err());
        let mut sig2 = key.sign(b"hello");
        sig2[40] ^= 1; // corrupt S half
        assert!(key.verifying_key().verify(b"hello", &sig2).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let other = SigningKey::from_seed(&[8u8; 32]);
        let sig = key.sign(b"hello");
        assert!(other.verifying_key().verify(b"hello", &sig).is_err());
    }

    #[test]
    fn verify_rejects_noncanonical_s() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let mut sig = key.sign(b"hello");
        // Make S >= l by setting it to all-ones.
        for b in sig[32..].iter_mut() {
            *b = 0xff;
        }
        assert_eq!(
            key.verifying_key().verify(b"hello", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn point_algebra() {
        let b = Point::basepoint();
        // 2B computed via double and via add agree.
        assert!(b.double().equals(&b.add(&b)));
        // B + identity == B.
        assert!(b.add(&Point::identity()).equals(&b));
        // 3B = 2B + B = B + 2B.
        let two_b = b.double();
        assert!(two_b.add(&b).equals(&b.add(&two_b)));
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = Point::basepoint();
        let mut acc = Point::identity();
        for k in 0u8..8 {
            let mut scalar = [0u8; 32];
            scalar[0] = k;
            assert!(b.scalar_mul(&scalar).equals(&acc), "k={k}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let b = Point::basepoint();
        let mut scalar = [0u8; 32];
        for k in 1u8..6 {
            scalar[0] = k * 29;
            let p = b.scalar_mul(&scalar);
            let enc = p.compress();
            let q = Point::decompress(&enc).unwrap();
            assert!(p.equals(&q));
            assert_eq!(q.compress(), enc);
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 does not give a square x^2 for the curve; probe a few.
        let mut bad = 0;
        for y in 2u8..12 {
            let mut enc = [0u8; 32];
            enc[0] = y;
            if Point::decompress(&enc).is_err() {
                bad += 1;
            }
        }
        assert!(bad > 0, "expected at least one non-point among small y");
    }
}

#[cfg(test)]
mod base_table_tests {
    use super::*;

    #[test]
    fn fixed_base_matches_ladder() {
        let b = Point::basepoint();
        for seed in 0u8..6 {
            let mut k = [0u8; 32];
            for (i, v) in k.iter_mut().enumerate() {
                *v = (i as u8).wrapping_mul(31).wrapping_add(seed * 17);
            }
            // Reduce so both paths see the same scalar semantics.
            let k = crate::scalar::reduce256(&k);
            let fast = Point::scalar_mul_base(&k);
            let slow = b.scalar_mul(&k);
            assert!(fast.equals(&slow), "seed {seed}");
        }
    }

    #[test]
    fn fixed_base_small_values() {
        let b = Point::basepoint();
        let mut acc = Point::identity();
        for n in 0u8..10 {
            let mut k = [0u8; 32];
            k[0] = n;
            assert!(Point::scalar_mul_base(&k).equals(&acc), "n = {n}");
            acc = acc.add(&b);
        }
    }
}

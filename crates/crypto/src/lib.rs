#![warn(missing_docs)]
//! From-scratch cryptographic primitives for the LibSEAL reproduction.
//!
//! LibSEAL needs a TLS stack, log signing, sealing and attestation, all of
//! which must run "inside the enclave" without calling out to system
//! libraries. This crate provides the complete primitive suite used by the
//! rest of the workspace:
//!
//! - [`sha2`]: SHA-256 and SHA-512 (FIPS 180-4),
//! - [`hmac`]: HMAC (RFC 2104) over both hashes,
//! - [`hkdf`]: HKDF (RFC 5869),
//! - [`chacha20`] / [`poly1305`] / [`aead`]: the RFC 8439 AEAD used for
//!   TLS records and sealed storage,
//! - [`x25519`]: Diffie-Hellman key agreement (RFC 7748),
//! - [`ed25519`]: signatures (RFC 8032), standing in for the SGX SDK's
//!   ECDSA (see DESIGN.md for the substitution rationale),
//! - [`rng`]: a ChaCha20-based deterministic random bit generator,
//! - [`ct`]: constant-time comparison helpers.
//!
//! All implementations are self-contained; none shell out to OS crypto.
//! Each module carries the relevant RFC/FIPS test vectors in its unit
//! tests.

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod ed25519;
pub mod fe25519;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod rng;
pub mod scalar;
pub mod sha2;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use ed25519::{SigningKey, VerifyingKey};
pub use rng::SystemRng;
pub use sha2::{Sha256, Sha512};

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// An AEAD tag or MAC failed to verify.
    BadTag,
    /// A signature failed to verify.
    BadSignature,
    /// An encoded public key or point was not a valid curve element.
    InvalidPoint,
    /// A key, nonce or other input had the wrong length.
    BadLength,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidPoint => write!(f, "invalid curve point encoding"),
            CryptoError::BadLength => write!(f, "input has invalid length"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenience alias for fallible crypto operations.
pub type Result<T> = std::result::Result<T, CryptoError>;

//! HKDF (RFC 5869) based on HMAC-SHA-256.

use crate::hmac::HmacSha256;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested, per RFC 5869.
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0;
    while written < out.len() {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (out.len() - written).min(32);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-call HKDF: extract-then-expand.
#[must_use]
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    let mut out = vec![0u8; len];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = derive(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_multiblock_lengths() {
        let prk = extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let mut out = vec![0u8; len];
            expand(&prk, b"info", &mut out);
            // A longer expansion must begin with a shorter one (streaming property).
            let mut longer = vec![0u8; len + 16];
            expand(&prk, b"info", &mut longer);
            assert_eq!(&longer[..len], &out[..]);
        }
    }
}

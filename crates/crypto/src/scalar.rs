//! Arithmetic modulo the Ed25519 group order
//! `l = 2^252 + 27742317777372353535851937790883648493`.
//!
//! The byte-wise reduction follows the well-known TweetNaCl `modL`
//! routine: scalars are little-endian byte arrays, intermediates are
//! `i64` limbs of radix 2^8. Slow, simple and easy to audit — signing
//! throughput is nowhere near the bottleneck of this system.

/// The group order `l` as little-endian bytes (radix-256 limbs).
const L: [i64; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x10,
];

/// Reduces a 512-bit little-endian value modulo `l` into 32 bytes.
pub fn reduce512(input: &[u8; 64]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for (i, b) in input.iter().enumerate() {
        x[i] = *b as i64;
    }
    mod_l(&mut x)
}

/// Reduces a 256-bit little-endian value modulo `l`.
pub fn reduce256(input: &[u8; 32]) -> [u8; 32] {
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(input);
    reduce512(&wide)
}

/// Computes `(a * b + c) mod l` on 32-byte little-endian scalars.
pub fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for (i, v) in c.iter().enumerate() {
        x[i] = *v as i64;
    }
    for i in 0..32 {
        for j in 0..32 {
            x[i + j] += (a[i] as i64) * (b[j] as i64);
        }
    }
    mod_l(&mut x)
}

/// Whether `s` is a canonical scalar, i.e. `s < l` (RFC 8032 check for
/// the `S` half of signatures).
pub fn is_canonical(s: &[u8; 32]) -> bool {
    // Compare little-endian from the most significant byte down.
    for i in (0..32).rev() {
        let si = s[i] as i64;
        match si.cmp(&L[i]) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    false // s == l is not canonical.
}

fn mod_l(x: &mut [i64; 64]) -> [u8; 32] {
    for i in (32..64).rev() {
        let mut carry = 0i64;
        let xi = x[i];
        #[allow(clippy::needless_range_loop)]
        for j in (i - 32)..(i - 12) {
            x[j] += carry - 16 * xi * L[j - (i - 32)];
            carry = (x[j] + 128) >> 8;
            x[j] -= carry << 8;
        }
        x[i - 12] += carry;
        x[i] = 0;
    }
    let mut carry = 0i64;
    for j in 0..32 {
        x[j] += carry - (x[31] >> 4) * L[j];
        carry = x[j] >> 8;
        x[j] &= 255;
    }
    for j in 0..32 {
        x[j] -= carry * L[j];
    }
    let mut r = [0u8; 32];
    for i in 0..32 {
        x[i + 1] += x[i] >> 8;
        r[i] = (x[i] & 255) as u8;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_bytes() -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, v) in L.iter().enumerate() {
            out[i] = *v as u8;
        }
        out
    }

    #[test]
    fn reduce_zero() {
        assert_eq!(reduce512(&[0u8; 64]), [0u8; 32]);
    }

    #[test]
    fn reduce_l_is_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&l_bytes());
        assert_eq!(reduce512(&wide), [0u8; 32]);
    }

    #[test]
    fn reduce_l_plus_one_is_one() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&l_bytes());
        // l + 1 (no carry since low byte of l is 0xed).
        wide[0] += 1;
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(reduce512(&wide), one);
    }

    #[test]
    fn small_values_unchanged() {
        let mut wide = [0u8; 64];
        wide[0] = 42;
        wide[5] = 17;
        let r = reduce512(&wide);
        assert_eq!(r[0], 42);
        assert_eq!(r[5], 17);
        assert!(r[6..].iter().all(|&b| b == 0));
    }

    #[test]
    fn mul_add_small() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        let mut c = [0u8; 32];
        a[0] = 3;
        b[0] = 4;
        c[0] = 5;
        let r = mul_add(&a, &b, &c);
        assert_eq!(r[0], 17);
        assert!(r[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn mul_add_with_carry() {
        let a = [0xffu8; 32]; // huge scalar, gets reduced
        let b = [2u8; 32];
        let c = [1u8; 32];
        let r = mul_add(&a, &b, &c);
        assert!(is_canonical(&r));
    }

    #[test]
    fn canonicality() {
        assert!(is_canonical(&[0u8; 32]));
        let mut one = [0u8; 32];
        one[0] = 1;
        assert!(is_canonical(&one));
        assert!(!is_canonical(&l_bytes()));
        let mut l_minus_1 = l_bytes();
        l_minus_1[0] -= 1;
        assert!(is_canonical(&l_minus_1));
        assert!(!is_canonical(&[0xffu8; 32]));
    }

    #[test]
    fn reduction_idempotent() {
        // reduce(reduce(x)) == reduce(x) for assorted wide inputs.
        for seed in 0u8..8 {
            let wide: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(37) ^ seed);
            let once = reduce512(&wide);
            assert!(is_canonical(&once));
            assert_eq!(reduce256(&once), once);
        }
    }
}

//! The ChaCha20 stream cipher (RFC 8439 §2.3).

/// ChaCha20 cipher instance bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for block counter `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `counter`) into `data` in
    /// place. Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, counter: u32, data: &mut [u8]) {
        let mut ctr = counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(ctr);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2: the ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    // RFC 8439 §2.4.2: ChaCha20 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        let cipher = ChaCha20::new(&key, &nonce);
        cipher.apply_keystream(1, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let orig = data.clone();
        cipher.apply_keystream(0, &mut data);
        assert_ne!(data, orig);
        cipher.apply_keystream(0, &mut data);
        assert_eq!(data, orig);
    }
}

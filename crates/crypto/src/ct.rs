//! Constant-time helpers.
//!
//! Comparisons of MACs, tags and key material must not leak the position
//! of the first differing byte through timing. These helpers accumulate
//! differences with bitwise ORs so the running time depends only on the
//! input lengths.

/// Compares two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately when the lengths differ; length is public
/// information for all uses in this workspace.
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map `diff == 0` to 1 without a data-dependent branch.
    let diff = diff as u16;
    let is_zero = (diff.wrapping_sub(1) >> 8) & 1;
    is_zero == 1
}

/// Selects `a` when `choice` is 1 and `b` when `choice` is 0, branch-free.
///
/// # Panics
///
/// Debug-asserts that `choice` is 0 or 1.
#[must_use]
pub fn select_u64(choice: u64, a: u64, b: u64) -> u64 {
    debug_assert!(choice == 0 || choice == 1);
    let mask = choice.wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Conditionally swaps `a` and `b` when `choice` is 1, branch-free.
pub fn swap_u64s(choice: u64, a: &mut [u64], b: &mut [u64]) {
    debug_assert!(choice == 0 || choice == 1);
    debug_assert_eq!(a.len(), b.len());
    let mask = choice.wrapping_neg();
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let t = mask & (*x ^ *y);
        *x ^= t;
        *y ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"\x00", b"\x01"));
    }

    #[test]
    fn select_works() {
        assert_eq!(select_u64(1, 7, 9), 7);
        assert_eq!(select_u64(0, 7, 9), 9);
    }

    #[test]
    fn swap_works() {
        let mut a = [1u64, 2, 3];
        let mut b = [4u64, 5, 6];
        swap_u64s(0, &mut a, &mut b);
        assert_eq!(a, [1, 2, 3]);
        swap_u64s(1, &mut a, &mut b);
        assert_eq!(a, [4, 5, 6]);
        assert_eq!(b, [1, 2, 3]);
    }
}

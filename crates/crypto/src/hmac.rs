//! HMAC (RFC 2104) over SHA-256 and SHA-512.

use crate::sha2::{Sha256, Sha512};

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC computation.
    pub fn finalize(mut self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; 32] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::eq(&Self::mac(key, data), tag)
    }
}

/// Incremental HMAC-SHA-512.
#[derive(Clone)]
pub struct HmacSha512 {
    inner: Sha512,
    outer: Sha512,
}

impl HmacSha512 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 128];
        if key.len() > 128 {
            k[..64].copy_from_slice(&Sha512::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 128];
        let mut opad = [0x5cu8; 128];
        for i in 0..128 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        let mut outer = Sha512::new();
        outer.update(&opad);
        HmacSha512 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC computation.
    pub fn finalize(mut self) -> [u8; 64] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; 64] {
        let mut h = HmacSha512::new(key);
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&HmacSha512::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    // RFC 4231 test case 2 (short key "Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let mut h = HmacSha256::new(b"key");
        for c in data.chunks(13) {
            h.update(c);
        }
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", &data));
    }

    #[test]
    fn verify_rejects_wrong_tag() {
        let tag = HmacSha256::mac(b"k", b"msg");
        assert!(HmacSha256::verify(b"k", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"msg", &bad));
        assert!(!HmacSha256::verify(b"k", b"msg", &tag[..31]));
    }
}

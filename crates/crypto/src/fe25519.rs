//! Field arithmetic modulo `p = 2^255 - 19`.
//!
//! Elements are held in five 64-bit limbs of radix `2^51` (the classic
//! "donna-64" layout). The invariant maintained between operations is
//! that limbs stay below `2^52` after a reduction (multiplication or
//! squaring) and below `2^54` at the inputs of a multiplication, which
//! keeps every `u128` intermediate far from overflow.

use crate::ct;

/// The modulus bit pattern `2^51 - 1` used for limb masking.
const MASK: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 - 19).
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Builds a field element from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        debug_assert!(v < (1 << 51));
        Fe([v, 0, 0, 0, 0])
    }

    /// Decodes 32 little-endian bytes; the top bit is ignored per
    /// convention (RFC 7748 / RFC 8032).
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let load8 = |i: usize| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load8(0) & MASK,
            (load8(6) >> 3) & MASK,
            (load8(12) >> 6) & MASK,
            (load8(19) >> 1) & MASK,
            (load8(24) >> 12) & MASK,
        ])
    }

    /// Encodes the element canonically to 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut h = self.0;
        // Two carry passes bring every limb below 2^52, then the
        // quotient trick performs the final conditional subtraction of p.
        for _ in 0..2 {
            let mut c;
            c = h[0] >> 51;
            h[0] &= MASK;
            h[1] += c;
            c = h[1] >> 51;
            h[1] &= MASK;
            h[2] += c;
            c = h[2] >> 51;
            h[2] &= MASK;
            h[3] += c;
            c = h[3] >> 51;
            h[3] &= MASK;
            h[4] += c;
            c = h[4] >> 51;
            h[4] &= MASK;
            h[0] += 19 * c;
        }
        // q = floor((h + 19) / 2^255): 1 iff h >= p.
        let mut q = (h[0].wrapping_add(19)) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        h[0] += 19 * q;
        let mut c;
        c = h[0] >> 51;
        h[0] &= MASK;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= MASK;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= MASK;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= MASK;
        h[4] += c;
        h[4] &= MASK;

        let mut out = [0u8; 32];
        let write = |out: &mut [u8; 32], bitpos: usize, v: u64| {
            // Each limb occupies 51 bits starting at `bitpos`; OR it in
            // byte by byte.
            let byte = bitpos / 8;
            let shift = bitpos % 8;
            let v = (v as u128) << shift;
            for i in 0..8 {
                if byte + i < 32 {
                    out[byte + i] |= ((v >> (8 * i)) & 0xff) as u8;
                }
            }
        };
        write(&mut out, 0, h[0]);
        write(&mut out, 51, h[1]);
        write(&mut out, 102, h[2]);
        write(&mut out, 153, h[3]);
        write(&mut out, 204, h[4]);
        out
    }

    /// Adds without reduction; callers must feed the result into a
    /// reducing operation before limbs can overflow.
    #[must_use]
    pub fn add(&self, rhs: &Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
    }

    /// Computes `self - rhs` by adding `2p` first so limbs never go
    /// negative.
    #[must_use]
    pub fn sub(&self, rhs: &Fe) -> Fe {
        const TWO_P0: u64 = 0xFFFFFFFFFFFDA; // 2*(2^51 - 19)
        const TWO_PI: u64 = 0xFFFFFFFFFFFFE; // 2*(2^51 - 1)
        let a = &self.0;
        let b = &rhs.0;
        let r = Fe([
            a[0] + TWO_P0 - b[0],
            a[1] + TWO_PI - b[1],
            a[2] + TWO_PI - b[2],
            a[3] + TWO_PI - b[3],
            a[4] + TWO_PI - b[4],
        ]);
        r.weak_reduce()
    }

    /// Negation (`p - self`).
    #[must_use]
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// One carry pass, bringing limbs back under `2^52`.
    #[must_use]
    fn weak_reduce(self) -> Fe {
        let mut h = self.0;
        let mut c;
        c = h[0] >> 51;
        h[0] &= MASK;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= MASK;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= MASK;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= MASK;
        h[4] += c;
        c = h[4] >> 51;
        h[4] &= MASK;
        h[0] += 19 * c;
        Fe(h)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(|x| x as u128);
        let [b0, b1, b2, b3, b4] = rhs.0.map(|x| x as u128);
        let (b1_19, b2_19, b3_19, b4_19) = (b1 * 19, b2 * 19, b3 * 19, b4 * 19);

        let c0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
        let c1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
        let c2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
        let c3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
        let c4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

        Fe::carry(c0, c1, c2, c3, c4)
    }

    /// Field squaring (slightly cheaper than a general multiply).
    #[must_use]
    pub fn square(&self) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(|x| x as u128);
        let (d0, d1, d2) = (a0 * 2, a1 * 2, a2 * 2);
        let (a3_19, a4_19) = (a3 * 19, a4 * 19);

        let c0 = a0 * a0 + d1 * a4_19 + d2 * a3_19;
        let c1 = d0 * a1 + d2 * a4_19 + a3 * a3_19;
        let c2 = d0 * a2 + a1 * a1 + 2 * a3 * a4_19;
        let c3 = d0 * a3 + d1 * a2 + a4 * a4_19;
        let c4 = d0 * a4 + d1 * a3 + a2 * a2;

        Fe::carry(c0, c1, c2, c3, c4)
    }

    fn carry(c0: u128, c1: u128, c2: u128, c3: u128, c4: u128) -> Fe {
        let mut c0 = c0;
        let mut c1 = c1;
        let mut c2 = c2;
        let mut c3 = c3;
        let mut c4 = c4;
        c1 += c0 >> 51;
        let h0 = (c0 as u64) & MASK;
        c2 += c1 >> 51;
        let h1 = (c1 as u64) & MASK;
        c3 += c2 >> 51;
        let h2 = (c2 as u64) & MASK;
        c4 += c3 >> 51;
        let h3 = (c3 as u64) & MASK;
        // Keep the wrap-around in u128: (c4 >> 51) * 19 can slightly
        // exceed 64 bits for worst-case unreduced inputs.
        c0 = (c4 >> 51) * 19 + h0 as u128;
        let h4 = (c4 as u64) & MASK;
        let h0 = (c0 as u64) & MASK;
        let h1 = h1 + (c0 >> 51) as u64;
        Fe([h0, h1, h2, h3, h4])
    }

    /// Multiplies by a small scalar (`< 2^32`).
    #[must_use]
    pub fn mul_small(&self, k: u32) -> Fe {
        let k = k as u128;
        let [a0, a1, a2, a3, a4] = self.0.map(|x| x as u128);
        Fe::carry(a0 * k, a1 * k, a2 * k, a3 * k, a4 * k)
    }

    /// Variable-time exponentiation by a 256-bit little-endian exponent.
    ///
    /// Used only for computing public constants and inversions of public
    /// values; secret-dependent exponents never flow here.
    #[must_use]
    pub fn pow(&self, exp_le: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        let mut started = false;
        for i in (0..256).rev() {
            if started {
                result = result.square();
            }
            if (exp_le[i / 8] >> (i % 8)) & 1 == 1 {
                if started {
                    result = result.mul(self);
                } else {
                    result = *self;
                    started = true;
                }
            }
        }
        if started {
            result
        } else {
            Fe::ONE
        }
    }

    /// Multiplicative inverse via Fermat (`self^(p-2)`).
    #[must_use]
    pub fn invert(&self) -> Fe {
        self.pow(&two_pow_minus(255, 21))
    }

    /// Computes `self^((p-5)/8)`, the core of the square-root formula.
    #[must_use]
    pub fn pow_p58(&self) -> Fe {
        self.pow(&two_pow_minus(252, 3))
    }

    /// Whether the canonical encoding equals zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The low bit of the canonical encoding (the "sign" per RFC 8032).
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Constant-time equality on canonical encodings.
    #[must_use]
    pub fn ct_eq(&self, other: &Fe) -> bool {
        ct::eq(&self.to_bytes(), &other.to_bytes())
    }

    /// Constant-time conditional swap of two elements.
    pub fn cswap(choice: u64, a: &mut Fe, b: &mut Fe) {
        ct::swap_u64s(choice, &mut a.0, &mut b.0);
    }
}

/// Returns `2^k - m` as 32 little-endian bytes.
///
/// # Panics
///
/// Panics if `k >= 256` or the subtraction underflows.
pub fn two_pow_minus(k: u32, m: u64) -> [u8; 32] {
    assert!(k < 256);
    let mut bytes = [0u8; 32];
    bytes[(k / 8) as usize] = 1 << (k % 8);
    // Subtract m with borrow propagation.
    let mut borrow = m;
    for b in bytes.iter_mut() {
        if borrow == 0 {
            break;
        }
        let cur = *b as u64;
        let sub = borrow & 0xff;
        if cur >= sub {
            *b = (cur - sub) as u8;
            borrow >>= 8;
        } else {
            *b = (cur + 256 - sub) as u8;
            borrow = (borrow >> 8) + 1;
        }
    }
    assert_eq!(borrow, 0, "two_pow_minus underflow");
    bytes
}

/// Curve constants derived at first use (never transcribed by hand).
pub struct Constants {
    /// Twisted Edwards `d = -121665/121666`.
    pub d: Fe,
    /// `2d`, used by the unified addition formula.
    pub d2: Fe,
    /// A square root of `-1` (namely `2^((p-1)/4)`).
    pub sqrt_m1: Fe,
}

/// Returns the lazily-initialised curve constants.
pub fn constants() -> &'static Constants {
    use std::sync::OnceLock;
    static CONSTS: OnceLock<Constants> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let d = Fe::from_u64(121665)
            .neg()
            .mul(&Fe::from_u64(121666).invert());
        let d2 = d.add(&d).weak_reduce();
        // (p-1)/4 = 2^253 - 5.
        let sqrt_m1 = Fe::from_u64(2).pow(&two_pow_minus(253, 5));
        Constants { d, d2, sqrt_m1 }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe::from_u64(n)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(1234567);
        let b = fe(7654321);
        let c = a.add(&b).sub(&b);
        assert_eq!(c.to_bytes(), a.to_bytes());
    }

    #[test]
    fn sub_wraps_mod_p() {
        // 0 - 1 == p - 1.
        let r = Fe::ZERO.sub(&Fe::ONE);
        let mut expected = [0xffu8; 32];
        expected[0] = 0xec; // p - 1 = 2^255 - 20.
        expected[31] = 0x7f;
        assert_eq!(r.to_bytes(), expected);
    }

    #[test]
    fn mul_matches_small_ints() {
        assert_eq!(fe(7).mul(&fe(6)).to_bytes(), fe(42).to_bytes());
        assert_eq!(fe(0).mul(&fe(12345)).to_bytes(), Fe::ZERO.to_bytes());
    }

    #[test]
    fn square_matches_mul() {
        let a = Fe::from_bytes(&[0x42u8; 32]);
        assert_eq!(a.square().to_bytes(), a.mul(&a).to_bytes());
    }

    #[test]
    fn invert_works() {
        let a = fe(987654321);
        let inv = a.invert();
        assert_eq!(a.mul(&inv).to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn canonical_encoding_reduces_p() {
        // p itself must encode as zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = Fe::from_bytes(&p_bytes);
        // from_bytes masks the top bit, so p decodes to p - 2^255 + ...;
        // instead construct p via limbs: p = 2^255 - 19.
        let p_limbs = Fe([(1 << 51) - 19, MASK, MASK, MASK, MASK]);
        assert!(p_limbs.is_zero());
        let _ = p; // decoded value is p mod 2^255 = p - 2^255 is not meaningful
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let c = constants();
        let minus_one = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(c.sqrt_m1.square().to_bytes(), minus_one.to_bytes());
    }

    #[test]
    fn d_satisfies_definition() {
        let c = constants();
        // d * 121666 == -121665.
        let lhs = c.d.mul(&fe(121666));
        let rhs = fe(121665).neg();
        assert_eq!(lhs.to_bytes(), rhs.to_bytes());
    }

    #[test]
    fn from_to_bytes_roundtrip() {
        let mut b = [0u8; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i * 17 + 3) as u8;
        }
        b[31] &= 0x7f;
        let a = Fe::from_bytes(&b);
        assert_eq!(a.to_bytes(), b);
    }

    #[test]
    fn two_pow_minus_values() {
        // 2^8 - 1 = 255.
        let v = two_pow_minus(8, 1);
        assert_eq!(v[0], 255);
        assert!(v[1..].iter().all(|&x| x == 0));
        // 2^16 - 300 = 65236 = 0xFED4.
        let v = two_pow_minus(16, 300);
        assert_eq!(v[0], 0xd4);
        assert_eq!(v[1], 0xfe);
    }

    #[test]
    fn cswap_behaviour() {
        let mut a = fe(1);
        let mut b = fe(2);
        Fe::cswap(0, &mut a, &mut b);
        assert_eq!(a.to_bytes(), fe(1).to_bytes());
        Fe::cswap(1, &mut a, &mut b);
        assert_eq!(a.to_bytes(), fe(2).to_bytes());
        assert_eq!(b.to_bytes(), fe(1).to_bytes());
    }
}

//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! Used by the TLS record layer ([`libseal_tlsx`](../../tlsx)) and by the
//! sealing facility of the SGX simulator.

use crate::chacha20::ChaCha20;
use crate::ct;
use crate::poly1305::Poly1305;
use crate::{CryptoError, Result};

/// An AEAD cipher instance bound to a 256-bit key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Creates a cipher for `key`.
    pub fn new(key: &[u8; 32]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    fn poly_key(&self, nonce: &[u8; 12]) -> [u8; 32] {
        let cipher = ChaCha20::new(&self.key, nonce);
        let block = cipher.block(0);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block[..32]);
        otk
    }

    fn compute_tag(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let otk = self.poly_key(nonce);
        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` in place and returns the 16-byte tag.
    pub fn seal_in_place(&self, nonce: &[u8; 12], aad: &[u8], data: &mut [u8]) -> [u8; 16] {
        let cipher = ChaCha20::new(&self.key, nonce);
        cipher.apply_keystream(1, data);
        self.compute_tag(nonce, aad, data)
    }

    /// Encrypts `plaintext`, returning `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        let tag = self.seal_in_place(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies `tag` and decrypts `data` in place.
    ///
    /// On tag mismatch the data is left encrypted and an error returned.
    pub fn open_in_place(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; 16],
    ) -> Result<()> {
        let expected = self.compute_tag(nonce, aad, data);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let cipher = ChaCha20::new(&self.key, nonce);
        cipher.apply_keystream(1, data);
        Ok(())
    }

    /// Decrypts `ciphertext || tag` produced by [`Self::seal`].
    pub fn open(&self, nonce: &[u8; 12], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        if sealed.len() < 16 {
            return Err(CryptoError::BadLength);
        }
        let (ct_part, tag_part) = sealed.split_at(sealed.len() - 16);
        let mut tag = [0u8; 16];
        tag.copy_from_slice(tag_part);
        let mut data = ct_part.to_vec();
        self.open_in_place(nonce, aad, &mut data, &tag)?;
        Ok(data)
    }
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - len % 16) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, plaintext);
        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);

        let opened = aead.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tamper_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let aead = ChaCha20Poly1305::new(&key);
        let mut sealed = aead.seal(&nonce, b"aad", b"hello world");
        sealed[3] ^= 0x40;
        assert_eq!(aead.open(&nonce, b"aad", &sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn wrong_aad_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, b"aad", b"hello world");
        assert_eq!(
            aead.open(&nonce, b"other", &sealed),
            Err(CryptoError::BadTag)
        );
    }

    #[test]
    fn short_input_rejected() {
        let aead = ChaCha20Poly1305::new(&[0u8; 32]);
        assert_eq!(
            aead.open(&[0u8; 12], b"", &[0u8; 15]),
            Err(CryptoError::BadLength)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let aead = ChaCha20Poly1305::new(&[9u8; 32]);
        let sealed = aead.seal(&[1u8; 12], b"context", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(aead.open(&[1u8; 12], b"context", &sealed).unwrap(), b"");
    }
}

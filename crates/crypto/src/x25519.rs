//! X25519 Diffie-Hellman key agreement (RFC 7748).

use crate::fe25519::Fe;

/// The X25519 base point (`u = 9`).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Clamps a 32-byte scalar per RFC 7748 §5.
#[must_use]
pub fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Computes the X25519 function: scalar multiplication of the Montgomery
/// `u`-coordinate `u` by the clamped scalar `k`.
#[must_use]
pub fn x25519(k: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*k);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        let t0 = da.add(&cb);
        x3 = t0.square();
        let t1 = da.sub(&cb);
        z3 = x1.mul(&t1.square());
        x2 = aa.mul(&bb);
        let t2 = e.mul_small(121665);
        z2 = e.mul(&aa.add(&t2));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(&z2.invert()).to_bytes()
}

/// Derives the public key for secret scalar `k`.
#[must_use]
pub fn public_key(k: &[u8; 32]) -> [u8; 32] {
    x25519(k, &BASEPOINT)
}

/// Computes the shared secret between secret `k` and peer public `pk`.
#[must_use]
pub fn shared_secret(k: &[u8; 32], pk: &[u8; 32]) -> [u8; 32] {
    x25519(k, pk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let k = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expected = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(&k, &u), expected);
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let k = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expected = unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(x25519(&k, &u), expected);
    }

    // RFC 7748 §6.1 Diffie-Hellman example.
    #[test]
    fn rfc7748_dh_example() {
        let alice_sk = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = public_key(&alice_sk);
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            alice_pk,
            unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob_pk,
            unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared = unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(shared_secret(&alice_sk, &bob_pk), shared);
        assert_eq!(shared_secret(&bob_sk, &alice_pk), shared);
    }

    // RFC 7748 §5.2: 1,000-iteration ladder test (the 1M variant is too
    // slow for CI).
    #[test]
    fn rfc7748_iterated_1000() {
        let mut k = unhex("0900000000000000000000000000000000000000000000000000000000000000");
        let mut u = k;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            k,
            unhex("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")
        );
    }

    #[test]
    fn dh_commutes_random() {
        let a: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let b: [u8; 32] = core::array::from_fn(|i| (i * 13 + 5) as u8);
        assert_eq!(
            shared_secret(&a, &public_key(&b)),
            shared_secret(&b, &public_key(&a))
        );
    }
}

//! A ChaCha20-based deterministic random bit generator.
//!
//! Inside the simulated enclave there is no OS entropy source (system
//! calls would be ocalls), mirroring the real LibSEAL design point of
//! using the SGX SDK's in-enclave generator instead of `/dev/urandom`
//! (§4.2 optimisation 2). [`SystemRng`] seeds itself once at
//! construction from [`plat::entropy`] (the OS entropy shim) and then
//! runs forward on its own.

use crate::chacha20::ChaCha20;

/// A fast-key-erasure ChaCha20 DRBG.
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u64,
    buf: [u8; 64],
    used: usize,
}

impl ChaChaRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            counter: 0,
            buf: [0u8; 64],
            used: 64,
        }
    }

    fn refill(&mut self) {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.counter.to_le_bytes());
        self.counter = self.counter.wrapping_add(1);
        let cipher = ChaCha20::new(&self.key, &nonce);
        self.buf = cipher.block(0);
        // Fast key erasure: ratchet the key forward so past output
        // cannot be reconstructed from a captured state.
        let next = cipher.block(1);
        self.key.copy_from_slice(&next[..32]);
        self.used = 0;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            if self.used == 64 {
                self.refill();
            }
            *b = self.buf[self.used];
            self.used += 1;
        }
    }

    /// Returns a pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniform value in `[0, bound)` using rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// The workspace-wide randomness source: a [`ChaChaRng`] seeded from the
/// operating system once at construction.
pub struct SystemRng {
    inner: ChaChaRng,
}

impl Default for SystemRng {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemRng {
    /// Creates a generator seeded from OS entropy.
    pub fn new() -> Self {
        let seed = plat::entropy::seed32();
        SystemRng {
            inner: ChaChaRng::from_seed(seed),
        }
    }

    /// Creates a deterministic generator for reproducible tests and
    /// benchmarks.
    pub fn deterministic(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        SystemRng {
            inner: ChaChaRng::from_seed(s),
        }
    }

    /// Fills `out` with random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.inner.fill(out);
    }

    /// Returns a random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform value in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Returns a fresh 32-byte key.
    pub fn gen_key(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill(&mut k);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_is_reproducible() {
        let mut a = SystemRng::deterministic(42);
        let mut b = SystemRng::deterministic(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut ba = [0u8; 100];
        let mut bb = [0u8; 100];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SystemRng::deterministic(1);
        let mut b = SystemRng::deterministic(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SystemRng::deterministic(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn key_erasure_ratchets() {
        let mut rng = ChaChaRng::from_seed([1u8; 32]);
        let mut first = [0u8; 64];
        rng.fill(&mut first);
        let mut second = [0u8; 64];
        rng.fill(&mut second);
        assert_ne!(first, second);
    }

    #[test]
    fn fill_counts_bytes_exactly() {
        let mut rng = SystemRng::deterministic(3);
        let mut a = [0u8; 7];
        let mut b = [0u8; 7];
        rng.fill(&mut a);
        rng.fill(&mut b);
        assert_ne!(a, b, "stream must advance between calls");
    }
}

//! Property-based tests for the crypto primitives (deterministic
//! `plat::check` harness; same properties and case counts as the
//! original proptest suite).

use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::chacha20::ChaCha20;
use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::sha2::{Sha256, Sha512};
use libseal_crypto::{hkdf, x25519};

plat::prop! {
    #![cases(32)]

    fn sha256_incremental_equals_oneshot(g) {
        let data = g.bytes(0..2000);
        let split = g.usize_in(0..2000).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    fn sha512_incremental_equals_oneshot(g) {
        let data = g.bytes(0..2000);
        let split = g.usize_in(0..2000).min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize().to_vec(), Sha512::digest(&data).to_vec());
    }

    fn chacha20_is_an_involution(g) {
        let key = g.byte_array::<32>();
        let nonce = g.byte_array::<12>();
        let counter = g.u32();
        let mut data = g.bytes(0..500);
        let orig = data.clone();
        let cipher = ChaCha20::new(&key, &nonce);
        cipher.apply_keystream(counter, &mut data);
        cipher.apply_keystream(counter, &mut data);
        assert_eq!(data, orig);
    }

    fn aead_roundtrip(g) {
        let key = g.byte_array::<32>();
        let nonce = g.byte_array::<12>();
        let aad = g.bytes(0..64);
        let plaintext = g.bytes(0..500);
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, &plaintext);
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    fn aead_detects_any_single_bitflip(g) {
        let key = g.byte_array::<32>();
        let nonce = g.byte_array::<12>();
        let plaintext = g.bytes(1..200);
        let aead = ChaCha20Poly1305::new(&key);
        let mut sealed = aead.seal(&nonce, b"aad", &plaintext);
        let idx = g.index(sealed.len());
        sealed[idx] ^= 1 << g.usize_in(0..8);
        assert!(aead.open(&nonce, b"aad", &sealed).is_err());
    }

    fn hkdf_is_deterministic_and_prefix_stable(g) {
        let salt = g.bytes(0..32);
        let ikm = g.bytes(1..64);
        let info = g.bytes(0..32);
        let len = g.usize_in(1..100);
        let a = hkdf::derive(&salt, &ikm, &info, len);
        let b = hkdf::derive(&salt, &ikm, &info, len);
        assert_eq!(&a, &b);
        let longer = hkdf::derive(&salt, &ikm, &info, len + 13);
        assert_eq!(&longer[..len], &a[..]);
    }

    fn ed25519_sign_verify_roundtrip(g) {
        let seed = g.byte_array::<32>();
        let msg = g.bytes(0..300);
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    fn ed25519_rejects_modified_message(g) {
        let seed = g.byte_array::<32>();
        let msg = g.bytes(1..300);
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut bad = msg.clone();
        let idx = g.index(bad.len());
        bad[idx] ^= 0x01;
        assert!(key.verifying_key().verify(&bad, &sig).is_err());
    }

    fn x25519_diffie_hellman_commutes(g) {
        let a = g.byte_array::<32>();
        let b = g.byte_array::<32>();
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        assert_eq!(x25519::shared_secret(&a, &pb), x25519::shared_secret(&b, &pa));
    }
}

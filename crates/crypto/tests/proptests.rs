//! Property-based tests for the crypto primitives.

use libseal_crypto::aead::ChaCha20Poly1305;
use libseal_crypto::chacha20::ChaCha20;
use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::sha2::{Sha256, Sha512};
use libseal_crypto::{hkdf, x25519};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000,
    ) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize().to_vec(), Sha512::digest(&data).to_vec());
    }

    #[test]
    fn chacha20_is_an_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let orig = data.clone();
        let cipher = ChaCha20::new(&key, &nonce);
        cipher.apply_keystream(counter, &mut data);
        cipher.apply_keystream(counter, &mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        plaintext in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, &plaintext);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn aead_detects_any_single_bitflip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..200),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let aead = ChaCha20Poly1305::new(&key);
        let mut sealed = aead.seal(&nonce, b"aad", &plaintext);
        let idx = flip_byte.index(sealed.len());
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(aead.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn hkdf_is_deterministic_and_prefix_stable(
        salt in proptest::collection::vec(any::<u8>(), 0..32),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..32),
        len in 1usize..100,
    ) {
        let a = hkdf::derive(&salt, &ikm, &info, len);
        let b = hkdf::derive(&salt, &ikm, &info, len);
        prop_assert_eq!(&a, &b);
        let longer = hkdf::derive(&salt, &ikm, &info, len + 13);
        prop_assert_eq!(&longer[..len], &a[..]);
    }

    #[test]
    fn ed25519_sign_verify_roundtrip(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn ed25519_rejects_modified_message(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..300),
        flip in any::<prop::sample::Index>(),
    ) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut bad = msg.clone();
        let idx = flip.index(bad.len());
        bad[idx] ^= 0x01;
        prop_assert!(key.verifying_key().verify(&bad, &sig).is_err());
    }

    #[test]
    fn x25519_diffie_hellman_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        prop_assert_eq!(
            x25519::shared_secret(&a, &pb),
            x25519::shared_secret(&b, &pa)
        );
    }
}

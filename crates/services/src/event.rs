//! The event-driven service core: one reactor thread multiplexing
//! every connection, with application handlers on an lthread job pool.
//!
//! The paper's services (§6) are thread-per-connection; at thousands
//! of mostly-idle TLS sessions that design spends a kernel thread (and
//! with auditing, an async-call slot) per parked socket. This module
//! restructures serving around readiness:
//!
//! - a [`plat::reactor::Reactor`] (epoll) watches the listener and all
//!   client sockets; idle sessions cost a registered interest, not a
//!   stack;
//! - sockets that became readable in the same sweep are drained
//!   through **one** batched enclave transition
//!   ([`LibSeal::pump_batch`]), amortising the §4.2 transition cost
//!   across sessions exactly like the seal/verify batch entries;
//! - parsed requests run on a [`JobPool`] of lthread coroutines, so
//!   the group-commit barrier inside `ssl_write` blocks a borrowed
//!   coroutine — never the reactor — and concurrent responses still
//!   share counter binds and fsyncs;
//! - a [`plat::timer::TimerWheel`] evicts idle sessions and paces the
//!   accept-failure backoff without blocking the loop.
//!
//! Native (non-audited) TLS sessions are pumped inline: the state
//! machine lives outside any enclave, so there is no transition to
//! amortise.
//!
//! Asynchronous-runtime slots admit one caller at a time, so every
//! LibSEAL call made by the event core — the reactor's batched pump
//! and each worker's write — borrows a slot index from a [`SlotPool`]
//! sized to the runtime, restoring the threaded path's
//! one-slot-per-thread discipline without pinning slots to parked
//! connections.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use libseal::plane::AuditPlane;
use libseal::SessionInput;
use libseal_httpx::http::{head_complete, parse_request_limited, Limits, Request, Response};
use libseal_httpx::ParseError;
use libseal_lthread::{JobPool, PoolConfig};
use libseal_tlsx::ssl::{ReadOutcome, Role, Ssl, SslConfig};
use libseal_tlsx::stream::{FlushOutcome, WireBuf};
use plat::channel::{self, Receiver, Sender};
use plat::reactor::{Event, Interest, Reactor, Waker};
use plat::timer::TimerWheel;

use crate::tlsadapter::TlsMode;

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Timer token that re-arms a paused listener.
const ACCEPT_RESUME: u64 = u64::MAX - 1;
/// How long the listener stays silenced after a failed accept.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);
/// Upper bound on one reactor park, so shutdown and timer churn stay
/// responsive even without wake-ups.
const MAX_PARK: Duration = Duration::from_millis(50);
/// Pending audit work (unresolved group-commit tickets + verifier
/// lag) above which the listener pauses instead of admitting more
/// connections: admission control must kick in while the audit plane
/// is saturated, not after memory fills with unserviceable sessions.
const AUDIT_BACKLOG_PAUSE: u64 = 256;

/// What a service plugs into the shared event loop.
///
/// One implementation exists per service (Apache, Squid); the loop
/// owns sockets, TLS and scheduling, the `App` owns request semantics
/// and metrics.
pub(crate) trait App: Send + Sync + 'static {
    /// Per-connection application state. It travels into the worker
    /// job with each request and returns with the completion, so
    /// handlers may block on it (e.g. Squid's upstream leg) without
    /// synchronisation.
    type Conn: Send + 'static;

    /// State for a freshly accepted connection. Must not block: this
    /// runs on the reactor.
    fn open_conn(&self) -> Self::Conn;

    /// Serves one request. Runs on a pool coroutine and may block.
    fn handle(&self, conn: &mut Self::Conn, req: &Request) -> Response;

    /// Tear-down hook (upstream close, etc.). May run on the reactor;
    /// keep it brief.
    fn close_conn(&self, _conn: &mut Self::Conn) {}

    /// Telemetry span wrapped around `handle` + the response write.
    fn span_name(&self) -> &'static str;

    /// A request was served (count it, record latency, label routes).
    fn on_request(&self, path: &str, started: Instant);

    /// A connection sent provably-not-HTTP bytes (it gets a 400).
    fn on_malformed(&self);

    /// `accept(2)` failed transiently.
    fn on_accept_error(&self);
}

/// Event-loop tuning shared by the services.
pub(crate) struct EventConfig {
    pub tls: TlsMode,
    /// Carrier threads under the worker job pool.
    pub workers: usize,
    /// Idle connections are evicted after this long without traffic.
    pub idle_timeout: Duration,
    /// Phase deadlines (see [`Phase`]): a connection that stays in a
    /// phase past its deadline is evicted with a per-phase counter.
    pub timeouts: PhaseTimeouts,
    /// Most concurrent connections; excess accepts are refused
    /// immediately (load shedding) rather than queued.
    pub max_connections: usize,
    /// Bound on the graceful-drain wait once `draining` flips.
    pub drain_timeout: Duration,
    /// HTTP parser limits for per-session buffer caps (431/413).
    pub limits: Limits,
}

/// Per-phase eviction deadlines for the event core.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PhaseTimeouts {
    /// Accept → TLS establishment.
    pub handshake: Duration,
    /// First decrypted request byte → complete header section.
    pub header: Duration,
    /// Complete head → complete body.
    pub body: Duration,
    /// Response queued → wire buffer drained.
    pub write: Duration,
}

impl Default for PhaseTimeouts {
    fn default() -> PhaseTimeouts {
        PhaseTimeouts {
            handshake: Duration::from_secs(10),
            header: Duration::from_secs(10),
            body: Duration::from_secs(30),
            write: Duration::from_secs(30),
        }
    }
}

/// Connection lifecycle phase, each with its own deadline. Deadlines
/// are *per phase*, not per byte: a slowloris trickling one header
/// byte per second never pushes its header deadline out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// TLS handshake in progress.
    Handshake,
    /// Reading a request head.
    Head,
    /// Head complete; reading the body.
    Body,
    /// Unflushed response bytes waiting on the socket.
    Write,
    /// Established, no partial request, nothing to write.
    Idle,
    /// A handler owns the connection; never evicted by deadline.
    Busy,
}

/// A running event loop.
pub(crate) struct EventHandle {
    pub join: std::thread::JoinHandle<()>,
    /// Interrupts a parked reactor (use after flipping the shutdown
    /// flag).
    pub waker: Waker,
}

/// Lends async-call slot indices to concurrent LibSEAL callers.
///
/// `AsyncRuntime` panics if two threads share a slot, and the event
/// core has more callers (reactor + every pool coroutine) than the
/// threaded path's fixed worker-index scheme can name. Callers block
/// until a slot frees; without a runtime the pool is sized so that
/// acquisition never waits.
struct SlotPool {
    free: Mutex<Vec<usize>>,
    freed: Condvar,
}

impl SlotPool {
    fn new(n: usize) -> Arc<SlotPool> {
        Arc::new(SlotPool {
            free: Mutex::new((0..n.max(1)).rev().collect()),
            freed: Condvar::new(),
        })
    }

    fn acquire(self: &Arc<Self>) -> SlotGuard {
        let mut free = self.free.lock().expect("slot pool poisoned");
        loop {
            if let Some(idx) = free.pop() {
                return SlotGuard {
                    pool: Arc::clone(self),
                    idx,
                };
            }
            free = self.freed.wait(free).expect("slot pool poisoned");
        }
    }
}

struct SlotGuard {
    pool: Arc<SlotPool>,
    idx: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.pool
            .free
            .lock()
            .expect("slot pool poisoned")
            .push(self.idx);
        self.pool.freed.notify_one();
    }
}

/// The audit plane plus the slot discipline for calling it.
#[derive(Clone)]
struct Seal {
    ls: Arc<dyn AuditPlane>,
    slots: Arc<SlotPool>,
}

impl Seal {
    fn new_session(&self, affinity: u64) -> libseal::Result<u64> {
        let g = self.slots.acquire();
        self.ls.open_session(g.idx, affinity)
    }

    fn close_session(&self, sid: u64) {
        let g = self.slots.acquire();
        let _ = self.ls.close_session(g.idx, sid);
    }

    fn write_take(&self, sid: u64, data: &[u8]) -> libseal::Result<Vec<u8>> {
        let g = self.slots.acquire();
        self.ls.ssl_write_take(g.idx, sid, data)
    }

    fn pump(&self, items: Vec<SessionInput>) -> libseal::Result<Vec<libseal::SessionOutcome>> {
        let g = self.slots.acquire();
        self.ls.pump_batch(g.idx, items)
    }
}

/// The session's TLS endpoint. Native sessions live on the reactor;
/// audited ones live in the enclave and are addressed by id.
enum ConnTls {
    Native(Box<Ssl>),
    Seal(u64),
}

/// Worker → reactor completion.
enum Done {
    /// Ciphertext ready for the wire (audited path: the worker already
    /// paid the `ssl_write` transition and group-commit barrier).
    Wire(Vec<u8>),
    /// Plaintext the reactor must encrypt (native path).
    Plain(Vec<u8>),
    /// The response could not be written; drop the connection.
    Fail,
}

struct Completion<C> {
    token: u64,
    state: C,
    done: Done,
    close: bool,
}

struct Conn<C> {
    sock: TcpStream,
    tls: ConnTls,
    /// Outbound ciphertext not yet accepted by the socket.
    wire: WireBuf,
    /// Inbound decrypted bytes not yet parsed into a request.
    plain: Vec<u8>,
    /// Application state; `None` exactly while a job holds it.
    state: Option<C>,
    /// A request is in flight on the pool.
    busy: bool,
    /// Close once `wire` drains (Connection: close, malformed, or the
    /// peer's close_notify).
    close_after_flush: bool,
    /// The peer is gone (EOF or close_notify); no further requests.
    peer_closed: bool,
    /// Fatal; tear down at the next opportunity.
    dead: bool,
    /// Writable interest is currently registered.
    want_write: bool,
    /// The TLS handshake has completed (native: the state machine
    /// says so; audited: the last pump reported it).
    established: bool,
    /// Phase whose deadline is currently armed on the wheel.
    phase: Phase,
}

fn open_conn_gauge() -> libseal_telemetry::Gauge {
    libseal_telemetry::gauge("services_event_open_connections")
}

/// Eviction counter for a phase-deadline expiry.
fn phase_timeout_counter(phase: Phase) -> libseal_telemetry::Counter {
    libseal_telemetry::counter(match phase {
        Phase::Handshake => "services_event_handshake_timeouts_total",
        Phase::Head => "services_event_header_timeouts_total",
        Phase::Body => "services_event_body_timeouts_total",
        Phase::Write => "services_event_write_timeouts_total",
        Phase::Idle | Phase::Busy => "services_event_idle_evictions_total",
    })
}

/// Starts the reactor for `listener`. Fails fast (before any thread
/// spawns) where readiness polling is unsupported, so callers can fall
/// back to the threaded path.
pub(crate) fn serve<A: App>(
    listener: TcpListener,
    cfg: EventConfig,
    app: Arc<A>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
) -> io::Result<EventHandle> {
    listener.set_nonblocking(true)?;
    let reactor = Reactor::new()?;
    reactor.register(&listener, LISTENER, Interest::READABLE)?;
    let waker = reactor.waker();

    let (seal, native_cfg) = match &cfg.tls {
        TlsMode::LibSeal(ls) => {
            // With an async runtime the pool must not outnumber the
            // runtime's slots; without one, size it so nobody waits.
            let n = ls.async_slots().unwrap_or(cfg.workers + 2);
            (
                Some(Seal {
                    ls: Arc::clone(ls),
                    slots: SlotPool::new(n),
                }),
                None,
            )
        }
        TlsMode::Native { cert, key } => (
            None,
            Some(Arc::new(SslConfig {
                role: Role::Server,
                cert: Some(cert.clone()),
                key: Some(key.clone()),
                ca_roots: Vec::new(),
                verify_peer: false,
                expected_subject: None,
                attestation: None,
            })),
        ),
    };

    let pool = JobPool::new(PoolConfig {
        carriers: cfg.workers.max(1),
        lthreads_per_carrier: 8,
        // Synchronous LibSEAL instances run the whole audited write
        // path (sealing, SQL, invariant checks) inline on the worker
        // coroutine, and lthread stacks have no guard pages — size
        // them like the async runtime's enclave lthreads.
        stack_size: 256 * 1024,
    });
    let (done_tx, done_rx) = channel::unbounded();
    let lp = Loop {
        reactor,
        wheel: TimerWheel::new(Duration::from_millis(5), 1024),
        conns: HashMap::new(),
        sid_token: HashMap::new(),
        listener,
        accept_paused: false,
        next_token: 1,
        app,
        seal,
        native_cfg,
        idle: cfg.idle_timeout,
        timeouts: cfg.timeouts,
        max_connections: cfg.max_connections,
        drain_timeout: cfg.drain_timeout,
        limits: cfg.limits,
        pool,
        done_tx,
        done_rx,
        waker: waker.clone(),
        shutdown,
        draining,
        drain_deadline: None,
    };
    let join = std::thread::Builder::new()
        .name("event-reactor".into())
        .spawn(move || lp.run())?;
    Ok(EventHandle { join, waker })
}

struct Loop<A: App> {
    reactor: Reactor,
    wheel: TimerWheel,
    conns: HashMap<u64, Conn<A::Conn>>,
    /// LibSEAL session id → connection token.
    sid_token: HashMap<u64, u64>,
    listener: TcpListener,
    accept_paused: bool,
    next_token: u64,
    app: Arc<A>,
    seal: Option<Seal>,
    native_cfg: Option<Arc<SslConfig>>,
    idle: Duration,
    timeouts: PhaseTimeouts,
    max_connections: usize,
    drain_timeout: Duration,
    limits: Limits,
    pool: JobPool,
    done_tx: Sender<Completion<A::Conn>>,
    done_rx: Receiver<Completion<A::Conn>>,
    waker: Waker,
    shutdown: Arc<AtomicBool>,
    /// Graceful-drain request: stop accepting, deliver in-flight
    /// responses, then exit.
    draining: Arc<AtomicBool>,
    /// Set when the drain began; the loop exits at this instant even
    /// if stragglers remain.
    drain_deadline: Option<Instant>,
}

impl<A: App> Loop<A> {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        while !self.shutdown.load(Ordering::Acquire) {
            if self.draining.load(Ordering::Acquire) && self.drain_deadline.is_none() {
                self.begin_drain();
            }
            if let Some(deadline) = self.drain_deadline {
                // Reap connections that finished their in-flight work;
                // exit once none remain (or the deadline cuts off
                // stragglers — a stuck peer must not hold shutdown).
                let done: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.busy && c.wire.is_empty())
                    .map(|(&t, _)| t)
                    .collect();
                for t in done {
                    self.teardown(t);
                }
                if self.conns.is_empty() || Instant::now() >= deadline {
                    break;
                }
            }
            let timeout = match self.wheel.next_deadline() {
                Some(d) => d.saturating_duration_since(Instant::now()).min(MAX_PARK),
                None => MAX_PARK,
            };
            if self.reactor.wait(&mut events, Some(timeout)).is_err() {
                break;
            }

            // Phase 1: accept and read. Audited sessions contribute
            // their bytes to one batch; native ones are pumped inline.
            let mut batch: Vec<SessionInput> = Vec::new();
            let mut touched: Vec<u64> = Vec::new();
            for &ev in &events {
                if ev.token == LISTENER {
                    self.accept();
                    continue;
                }
                if !self.conns.contains_key(&ev.token) {
                    continue;
                }
                if ev.readable || ev.closed || ev.error {
                    self.read_ready(ev.token, &mut batch);
                }
                touched.push(ev.token);
            }

            // Phase 2: one enclave transition for every audited
            // session that became ready this sweep.
            if !batch.is_empty() {
                self.pump_seal(batch);
            }

            // Phase 3: dispatch parsed requests, push ciphertext,
            // refresh idle deadlines, reap the fallen.
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.post_activity(token);
            }

            // Phase 4: responses finished by the workers.
            while let Ok(c) = self.done_rx.try_recv() {
                self.complete(c);
            }

            // Phase 5: deadlines — phase-deadline eviction and accept
            // resume.
            for token in self.wheel.expired(Instant::now()) {
                if token == ACCEPT_RESUME {
                    self.resume_accept();
                    continue;
                }
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if conn.busy {
                    // A request is running; not stuck on the peer.
                    // Force a fresh deadline for whatever phase the
                    // completion lands in.
                    conn.phase = Phase::Busy;
                    self.wheel.schedule(token, Instant::now() + self.idle);
                    continue;
                }
                phase_timeout_counter(conn.phase).inc();
                self.teardown(token);
            }
        }

        // Shutdown: close every session (best-effort close_notify),
        // then the pool drains already-queued jobs as it drops.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.teardown(t);
        }
    }

    /// Enters graceful drain: the listener goes quiet, connections
    /// with no in-flight work are torn down immediately, and the rest
    /// get until [`EventConfig::drain_timeout`] to deliver their
    /// responses. Workers' group-commit barriers already ran by the
    /// time a completion reaches the reactor, so every delivered
    /// response is durable.
    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.drain_timeout);
        if !self.accept_paused {
            let _ = self.reactor.deregister(&self.listener);
        }
        self.accept_paused = true;
        self.wheel.cancel(ACCEPT_RESUME);
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && c.wire.is_empty())
            .map(|(&t, _)| t)
            .collect();
        for t in idle {
            self.teardown(t);
        }
    }

    /// Drains the accept queue. A failed accept pauses the listener
    /// for [`ACCEPT_BACKOFF`] instead of spinning on a level-triggered
    /// error, then retries until shutdown — transient failures
    /// (EMFILE, ECONNABORTED) must not kill the server.
    fn accept(&mut self) {
        loop {
            // Admission control first: above the connection cap, or
            // with the audit plane saturated, admitting more sessions
            // only converts load into memory. At the cap each queued
            // accept is refused fast (the client sees a reset — its
            // cue to back off); under audit backpressure the listener
            // pauses and the backlog queues instead.
            if self.seal.as_ref().is_some_and(|s| {
                self.conns.len() < self.max_connections
                    && s.ls.audit_backlog() > AUDIT_BACKLOG_PAUSE
            }) {
                libseal_telemetry::counter("services_event_backpressure_pauses_total").inc();
                let _ = self.reactor.deregister(&self.listener);
                self.accept_paused = true;
                self.wheel
                    .schedule(ACCEPT_RESUME, Instant::now() + ACCEPT_BACKOFF);
                break;
            }
            match plat::failpoint::check("services::accept").and_then(|()| self.listener.accept()) {
                Ok((sock, _)) => {
                    if self.drain_deadline.is_some() {
                        // Draining: refuse by dropping the socket.
                        continue;
                    }
                    if self.conns.len() >= self.max_connections {
                        libseal_telemetry::counter("services_event_sheds_total").inc();
                        drop(sock);
                        continue;
                    }
                    let _ = sock.set_nodelay(true);
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(sock);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.app.on_accept_error();
                    let _ = self.reactor.deregister(&self.listener);
                    self.accept_paused = true;
                    self.wheel
                        .schedule(ACCEPT_RESUME, Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    fn resume_accept(&mut self) {
        if !self.accept_paused || self.drain_deadline.is_some() {
            return;
        }
        self.accept_paused = false;
        if self
            .reactor
            .register(&self.listener, LISTENER, Interest::READABLE)
            .is_err()
        {
            // Try again next backoff period rather than going deaf.
            self.accept_paused = true;
            self.wheel
                .schedule(ACCEPT_RESUME, Instant::now() + ACCEPT_BACKOFF);
            return;
        }
        // Serve whatever queued while we were paused.
        self.accept();
    }

    fn admit(&mut self, sock: TcpStream) {
        // The token doubles as the connection's shard affinity, so it
        // is assigned before the session opens.
        let token = self.next_token;
        self.next_token += 1;
        let tls = match (&self.seal, &self.native_cfg) {
            (Some(seal), _) => match seal.new_session(token) {
                Ok(sid) => ConnTls::Seal(sid),
                Err(_) => return,
            },
            (None, Some(cfg)) => {
                let mut entropy = [0u8; 64];
                libseal_crypto::SystemRng::new().fill(&mut entropy);
                ConnTls::Native(Box::new(Ssl::new(Arc::clone(cfg), entropy)))
            }
            (None, None) => unreachable!("one TLS mode is always configured"),
        };
        if self
            .reactor
            .register(&sock, token, Interest::READABLE)
            .is_err()
        {
            if let ConnTls::Seal(sid) = tls {
                if let Some(seal) = &self.seal {
                    seal.close_session(sid);
                }
            }
            return;
        }
        if let ConnTls::Seal(sid) = tls {
            self.sid_token.insert(sid, token);
        }
        self.conns.insert(
            token,
            Conn {
                sock,
                tls,
                wire: WireBuf::new(),
                plain: Vec::new(),
                state: Some(self.app.open_conn()),
                busy: false,
                close_after_flush: false,
                peer_closed: false,
                dead: false,
                want_write: false,
                established: false,
                phase: Phase::Handshake,
            },
        );
        open_conn_gauge().add(1);
        self.wheel
            .schedule(token, Instant::now() + self.timeouts.handshake);
    }

    /// Reads everything the socket has. Native sessions advance their
    /// TLS state machine inline; audited sessions defer to the batch.
    fn read_ready(&mut self, token: u64, batch: &mut Vec<SessionInput>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        let mut input = Vec::new();
        loop {
            match conn.sock.read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => input.extend_from_slice(&buf[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if input.is_empty() {
            return;
        }
        match conn.tls {
            ConnTls::Native(_) => pump_native(conn, &input),
            ConnTls::Seal(sid) => batch.push(SessionInput { sid, input }),
        }
    }

    /// One batched transition moves every ready audited session:
    /// handshakes progress, requests decrypt, close_notify surfaces.
    fn pump_seal(&mut self, batch: Vec<SessionInput>) {
        let Some(seal) = self.seal.clone() else {
            return;
        };
        let tokens: Vec<u64> = batch
            .iter()
            .filter_map(|i| self.sid_token.get(&i.sid).copied())
            .collect();
        match seal.pump(batch) {
            Ok(outcomes) => {
                for o in outcomes {
                    let Some(&token) = self.sid_token.get(&o.sid) else {
                        continue;
                    };
                    let Some(conn) = self.conns.get_mut(&token) else {
                        continue;
                    };
                    // Flight bytes (or the failure's alert) first, so
                    // they reach the wire even on teardown.
                    conn.wire.push(&o.output);
                    conn.plain.extend_from_slice(&o.data);
                    if o.established {
                        conn.established = true;
                    }
                    if o.closed {
                        conn.peer_closed = true;
                    }
                    if o.error.is_some() {
                        conn.dead = true;
                    }
                }
            }
            Err(_) => {
                // The batch entry itself failed (runtime teardown):
                // every session in it is unusable.
                for token in tokens {
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.dead = true;
                    }
                }
            }
        }
    }

    fn post_activity(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if !conn.dead && !conn.busy && !conn.close_after_flush && !conn.peer_closed {
            self.try_dispatch(token);
        }
        self.flush(token);
        self.reschedule(token);
        self.finish(token);
    }

    /// Cuts one complete request out of the connection's plaintext and
    /// hands it to the pool. At most one request per connection is in
    /// flight; pipelined bytes wait in `plain` until the completion.
    fn try_dispatch(&mut self, token: u64) {
        if self.drain_deadline.is_some() {
            // Draining: no new requests, only in-flight deliveries.
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.plain.is_empty() {
            return;
        }
        match parse_request_limited(&conn.plain, &self.limits) {
            Ok((req, used)) => {
                conn.plain.drain(..used);
                self.spawn_job(token, req);
            }
            Err(ParseError::Incomplete) => {
                // Belt-and-braces buffer cap for streams the parser
                // keeps waiting on (e.g. a chunked body whose size
                // line never terminates): no single message may make
                // us buffer more than head + body limits.
                let cap = self
                    .limits
                    .max_head_bytes
                    .saturating_add(self.limits.max_body_bytes);
                if conn.plain.len() > cap {
                    libseal_telemetry::counter("services_event_limit_rejections_total").inc();
                    conn.plain.clear();
                    conn.plain.shrink_to_fit();
                    conn.close_after_flush = true;
                    let rsp = Response::new(413, b"request rejected".to_vec());
                    self.encrypt_now(token, &rsp.to_bytes());
                }
            }
            Err(e) => {
                // Provably not HTTP (400), or past a buffer cap
                // (431/413): no further bytes can fix either, and the
                // limit cases must stop buffering *now*.
                let status = e.close_status();
                if status == 400 {
                    self.app.on_malformed();
                } else {
                    libseal_telemetry::counter("services_event_limit_rejections_total").inc();
                }
                conn.plain.clear();
                conn.plain.shrink_to_fit();
                conn.close_after_flush = true;
                let rsp = Response::new(status, b"request rejected".to_vec());
                self.encrypt_now(token, &rsp.to_bytes());
            }
        }
    }

    /// Reactor-side encryption for loop-originated responses (the 400
    /// path). Rare enough that the audited variant's synchronous
    /// transition is acceptable.
    fn encrypt_now(&mut self, token: u64, plain: &[u8]) {
        let seal = self.seal.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match &mut conn.tls {
            ConnTls::Native(ssl) => {
                if ssl.ssl_write(plain).is_err() {
                    conn.dead = true;
                    return;
                }
                let out = ssl.take_output();
                conn.wire.push(&out);
            }
            ConnTls::Seal(sid) => {
                let sid = *sid;
                match seal
                    .expect("seal conn implies seal mode")
                    .write_take(sid, plain)
                {
                    Ok(wire) => conn.wire.push(&wire),
                    Err(_) => conn.dead = true,
                }
            }
        }
    }

    fn spawn_job(&mut self, token: u64, req: Request) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let Some(mut state) = conn.state.take() else {
            return;
        };
        conn.busy = true;
        let sid = match conn.tls {
            ConnTls::Seal(sid) => Some(sid),
            ConnTls::Native(_) => None,
        };
        let seal = self.seal.clone();
        let app = Arc::clone(&self.app);
        let done_tx = self.done_tx.clone();
        let waker = self.waker.clone();
        let spawned = self.pool.spawn(move || {
            let started = Instant::now();
            let close = req
                .headers
                .get("Connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
            // Span over routing and the (possibly enclave-terminated)
            // write-back, mirroring the threaded path: transitions
            // charged while it is open land in its boundary tally.
            let done = {
                let _span = libseal_telemetry::global()
                    .span(app.span_name(), libseal_telemetry::Side::Untrusted);
                let response = app.handle(&mut state, &req);
                match (&seal, sid) {
                    (Some(seal), Some(sid)) => match seal.write_take(sid, &response.to_bytes()) {
                        Ok(wire) => Done::Wire(wire),
                        Err(_) => Done::Fail,
                    },
                    _ => Done::Plain(response.to_bytes()),
                }
            };
            if !matches!(done, Done::Fail) {
                app.on_request(req.path(), started);
            }
            let delivered = done_tx
                .send(Completion {
                    token,
                    state,
                    done,
                    close,
                })
                .is_ok();
            if delivered {
                waker.wake();
            }
        });
        if spawned.is_err() {
            // Pool already shut down (reactor exiting); the closure —
            // and the state inside — was dropped.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
        }
    }

    fn complete(&mut self, c: Completion<A::Conn>) {
        let Some(conn) = self.conns.get_mut(&c.token) else {
            // Connection evicted or torn down while the job ran.
            let mut state = c.state;
            self.app.close_conn(&mut state);
            return;
        };
        conn.busy = false;
        conn.state = Some(c.state);
        match c.done {
            Done::Wire(wire) => conn.wire.push(&wire),
            Done::Plain(plain) => {
                if let ConnTls::Native(ssl) = &mut conn.tls {
                    if ssl.ssl_write(&plain).is_ok() {
                        let out = ssl.take_output();
                        conn.wire.push(&out);
                    } else {
                        conn.dead = true;
                    }
                }
            }
            Done::Fail => conn.dead = true,
        }
        if c.close || self.drain_deadline.is_some() {
            // `Connection: close`, or draining — this response is the
            // connection's last either way.
            conn.close_after_flush = true;
        }
        if !conn.dead && !conn.close_after_flush && !conn.peer_closed {
            // Pipelined follow-up request, if one is already buffered.
            self.try_dispatch(c.token);
        }
        self.flush(c.token);
        self.reschedule(c.token);
        self.finish(c.token);
    }

    /// Pushes queued ciphertext; tracks writable interest so the loop
    /// neither busy-polls an idle socket nor misses a drained buffer.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.wire.is_empty() {
            match conn.wire.flush_to(&mut conn.sock) {
                Ok(FlushOutcome::Done) => {}
                Ok(FlushOutcome::WantWrite) => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ =
                            self.reactor
                                .modify(&conn.sock, token, Interest::readable_writable());
                    }
                    return;
                }
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.want_write {
            conn.want_write = false;
            let _ = self.reactor.modify(&conn.sock, token, Interest::READABLE);
        }
    }

    /// Re-arms the connection's deadline for its current phase. The
    /// deadline only moves when the phase *changes* (or on idle
    /// activity): progress within a phase — one more header byte, one
    /// more flushed chunk — never extends it, which is what defeats
    /// slowloris-style trickling.
    fn reschedule(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let phase = if conn.busy {
            Phase::Busy
        } else if !conn.established {
            Phase::Handshake
        } else if !conn.wire.is_empty() {
            Phase::Write
        } else if conn.plain.is_empty() {
            Phase::Idle
        } else if head_complete(&conn.plain) {
            Phase::Body
        } else {
            Phase::Head
        };
        let timeout = match phase {
            Phase::Handshake => self.timeouts.handshake,
            Phase::Head => self.timeouts.header,
            Phase::Body => self.timeouts.body,
            Phase::Write => self.timeouts.write,
            Phase::Idle | Phase::Busy => self.idle,
        };
        if phase != conn.phase {
            conn.phase = phase;
            self.wheel.schedule(token, Instant::now() + timeout);
        } else if matches!(phase, Phase::Idle | Phase::Busy) {
            // Idle deadlines are inactivity timers: activity renews
            // them. (Busy re-arms so the wheel keeps a live entry.)
            self.wheel.schedule(token, Instant::now() + timeout);
        }
    }

    /// Tears the connection down once it has nothing left to do:
    /// immediately when dead, after the flush when closing, never
    /// while a worker still owns its state (the orphaned completion
    /// cleans up instead).
    fn finish(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.dead
            || (!conn.busy
                && (conn.peer_closed || (conn.close_after_flush && conn.wire.is_empty())))
        {
            self.teardown(token);
        }
    }

    fn teardown(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        open_conn_gauge().sub(1);
        self.wheel.cancel(token);
        let _ = self.reactor.deregister(&conn.sock);
        if let Some(mut state) = conn.state.take() {
            self.app.close_conn(&mut state);
        }
        match conn.tls {
            ConnTls::Seal(sid) => {
                self.sid_token.remove(&sid);
                if let Some(seal) = &self.seal {
                    seal.close_session(sid);
                }
            }
            ConnTls::Native(mut ssl) => {
                // Best-effort close_notify, as the threaded path does.
                ssl.send_close();
                let out = ssl.take_output();
                if !out.is_empty() {
                    let _ = conn.sock.write_all(&out);
                }
            }
        }
    }
}

/// Advances a native session's TLS state machine over fresh wire
/// bytes: handshake, then drain plaintext, then collect flight bytes.
fn pump_native<C>(conn: &mut Conn<C>, input: &[u8]) {
    let ConnTls::Native(ssl) = &mut conn.tls else {
        return;
    };
    ssl.provide_input(input);
    if !ssl.is_established() && ssl.do_handshake().is_err() {
        let out = ssl.take_output();
        conn.wire.push(&out);
        conn.dead = true;
        return;
    }
    if ssl.is_established() {
        conn.established = true;
        loop {
            match ssl.ssl_read() {
                Ok(ReadOutcome::Data(d)) => conn.plain.extend_from_slice(&d),
                Ok(ReadOutcome::WantRead) => break,
                Ok(ReadOutcome::Closed) => {
                    conn.peer_closed = true;
                    break;
                }
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }
    let out = ssl.take_output();
    conn.wire.push(&out);
}

/// Socket read-timeout tick for the threaded serve loops: short
/// enough that a worker blocked on a quiet peer notices shutdown or
/// drain within about a second.
pub(crate) const THREAD_READ_TICK: Duration = Duration::from_secs(1);

/// Deadline-bounded read for the *threaded* serve loops. The socket's
/// read timeout is [`THREAD_READ_TICK`], so each timed-out tick
/// re-checks the stop predicate (shutdown or drain) and the overall
/// `deadline` — a peer that stops sending can wedge a worker for at
/// most one phase deadline, and shutdown is honoured between ticks.
///
/// Returns `TimedOut` when the deadline passes or `stop` fires.
pub(crate) fn read_deadline(
    sock: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    stop: &dyn Fn() -> bool,
) -> io::Result<usize> {
    loop {
        match sock.read(buf) {
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(ref e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop() || Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "read deadline elapsed",
                    ));
                }
            }
            r => return r,
        }
    }
}

//! A collaborative-document sync service (ownCloud Documents
//! analogue, §6.1): clients join sessions, exchange JSON-encoded
//! updates, and save snapshots when they leave. Attack injection
//! covers the violations LibSEAL's ownCloud invariants detect: lost
//! edits, tampered updates and stale snapshots.

use std::collections::BTreeMap;
use std::sync::Arc;

use libseal_httpx::http::{Request, Response};
use libseal_httpx::json::Json;
use plat::sync::Mutex;

use crate::apache::Router;

/// Integrity attacks the server can be told to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnCloudAttack {
    /// Serve faithfully.
    None,
    /// Drop one update when relaying (a lost edit).
    DropUpdate {
        /// Document.
        doc: String,
        /// Sequence number to drop.
        seq: i64,
    },
    /// Tamper with one update's content when relaying.
    TamperUpdate {
        /// Document.
        doc: String,
        /// Sequence number to corrupt.
        seq: i64,
        /// Replacement content.
        content: String,
    },
    /// Serve an old snapshot to joining clients.
    StaleSnapshot {
        /// Document.
        doc: String,
    },
}

#[derive(Default)]
struct DocState {
    snapshot: String,
    snapshot_seq: i64,
    prev_snapshot: Option<(String, i64)>,
    /// Global op history: (seq, content).
    ops: Vec<(i64, String)>,
    /// Per-client delivery cursor (next op index to send).
    cursors: BTreeMap<String, usize>,
}

/// The document sync server.
pub struct OwnCloudServer {
    docs: Mutex<BTreeMap<String, DocState>>,
    attack: Mutex<OwnCloudAttack>,
    /// Simulated application-layer processing per request (the paper's
    /// ownCloud is bottlenecked by its PHP engine; §6.4).
    pub php_delay: std::time::Duration,
}

impl Default for OwnCloudServer {
    fn default() -> Self {
        Self::new()
    }
}

impl OwnCloudServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        OwnCloudServer {
            docs: Mutex::new(BTreeMap::new()),
            attack: Mutex::new(OwnCloudAttack::None),
            php_delay: std::time::Duration::ZERO,
        }
    }

    /// Creates a server with a simulated PHP processing delay.
    pub fn with_php_delay(delay: std::time::Duration) -> Self {
        OwnCloudServer {
            php_delay: delay,
            ..Self::new()
        }
    }

    /// Arms an attack.
    pub fn set_attack(&self, attack: OwnCloudAttack) {
        *self.attack.lock() = attack;
    }

    fn join(&self, doc: &str, client: &str) -> Json {
        let mut docs = self.docs.lock();
        let d = docs.entry(doc.to_string()).or_default();
        let attack = self.attack.lock().clone();
        let (snapshot, seq) = match &attack {
            OwnCloudAttack::StaleSnapshot { doc: ad } if ad == doc => d
                .prev_snapshot
                .clone()
                .unwrap_or((d.snapshot.clone(), d.snapshot_seq)),
            _ => (d.snapshot.clone(), d.snapshot_seq),
        };
        // The client starts receiving ops after the snapshot baseline.
        let baseline_idx = d.ops.iter().filter(|(s, _)| *s <= seq).count();
        d.cursors.insert(client.to_string(), baseline_idx);
        Json::object([
            ("snapshot", Json::str(snapshot)),
            ("seq", Json::num(seq as f64)),
        ])
    }

    fn sync(&self, doc: &str, client: &str, ops: &[Json]) -> Json {
        let mut docs = self.docs.lock();
        let d = docs.entry(doc.to_string()).or_default();
        let attack = self.attack.lock().clone();

        // Where this client's delivery stood before this round.
        let cursor = *d.cursors.get(client).unwrap_or(&0);
        let pre_len = d.ops.len();

        // Accept the client's new ops, assigning global sequence
        // numbers.
        let mut acks = Vec::new();
        for op in ops {
            let content = op.get("content").and_then(Json::as_str).unwrap_or("");
            let seq = d.ops.last().map(|(s, _)| *s).unwrap_or(0) + 1;
            d.ops.push((seq, content.to_string()));
            acks.push(Json::num(seq as f64));
        }

        // Relay ops the client has not seen, excluding the ones it
        // just sent (attack hooks here).
        let mut sent = Vec::new();
        for (seq, content) in d.ops[cursor.min(pre_len)..pre_len].iter() {
            match &attack {
                OwnCloudAttack::DropUpdate { doc: ad, seq: aseq } if ad == doc && aseq == seq => {
                    continue; // Lost edit.
                }
                OwnCloudAttack::TamperUpdate {
                    doc: ad,
                    seq: aseq,
                    content: evil,
                } if ad == doc && aseq == seq => {
                    sent.push(Json::object([
                        ("seq", Json::num(*seq as f64)),
                        ("content", Json::str(evil.clone())),
                    ]));
                }
                _ => {
                    sent.push(Json::object([
                        ("seq", Json::num(*seq as f64)),
                        ("content", Json::str(content.clone())),
                    ]));
                }
            }
        }
        d.cursors.insert(client.to_string(), d.ops.len());
        Json::object([("acks", Json::Array(acks)), ("ops", Json::Array(sent))])
    }

    fn leave(&self, doc: &str, client: &str, snapshot: &str, seq: i64) -> Json {
        let mut docs = self.docs.lock();
        let d = docs.entry(doc.to_string()).or_default();
        d.prev_snapshot = Some((d.snapshot.clone(), d.snapshot_seq));
        d.snapshot = snapshot.to_string();
        d.snapshot_seq = seq;
        d.cursors.remove(client);
        Json::object([("ok", Json::Bool(true))])
    }

    /// Current document snapshot (tests).
    pub fn snapshot_of(&self, doc: &str) -> Option<String> {
        self.docs.lock().get(doc).map(|d| d.snapshot.clone())
    }
}

impl Router for Arc<OwnCloudServer> {
    fn handle(&self, req: &Request) -> Response {
        if !self.php_delay.is_zero() {
            // The PHP engine burns CPU (it is the paper's bottleneck).
            libseal_sgxsim::cost::spin_for_nanos(self.php_delay.as_nanos() as u64);
        }
        if req.method != "POST" {
            return Response::new(405, b"POST only".to_vec());
        }
        let Ok(body) = Json::parse_bytes(&req.body) else {
            return Response::new(400, b"bad json".to_vec());
        };
        let doc = body.get("doc").and_then(Json::as_str).unwrap_or("");
        let client = body.get("client").and_then(Json::as_str).unwrap_or("");
        if doc.is_empty() || client.is_empty() {
            return Response::new(400, b"missing doc/client".to_vec());
        }
        let out = match req.path() {
            "/owncloud/join" => self.join(doc, client),
            "/owncloud/sync" => {
                let empty: Vec<Json> = Vec::new();
                let ops = body
                    .get("ops")
                    .and_then(Json::as_array)
                    .unwrap_or(&empty)
                    .to_vec();
                self.sync(doc, client, &ops)
            }
            "/owncloud/leave" => {
                let snapshot = body.get("snapshot").and_then(Json::as_str).unwrap_or("");
                let seq = body.get("seq").and_then(Json::as_i64).unwrap_or(0);
                self.leave(doc, client, snapshot, seq)
            }
            _ => return Response::new(404, b"unknown endpoint".to_vec()),
        };
        Response::new(200, out.to_string().into_bytes())
    }
}

/// Builds the JSON requests a document-editing client issues.
pub struct EditWorkload {
    doc: String,
    client: String,
    counter: u64,
}

impl EditWorkload {
    /// Creates an edit workload for (`doc`, `client`).
    pub fn new(doc: &str, client: &str) -> Self {
        EditWorkload {
            doc: doc.to_string(),
            client: client.to_string(),
            counter: 0,
        }
    }

    /// The join request.
    pub fn join(&self) -> Request {
        Request::new(
            "POST",
            "/owncloud/join",
            format!(r#"{{"doc":"{}","client":"{}"}}"#, self.doc, self.client).into_bytes(),
        )
    }

    /// The next sync request carrying one edit (alternating single
    /// characters and paragraphs, per §6.4's workload description).
    pub fn next_edit(&mut self) -> Request {
        self.counter += 1;
        let content = if self.counter.is_multiple_of(5) {
            format!("paragraph-{} lorem ipsum dolor sit amet", self.counter)
        } else {
            format!("+{}", (b'a' + (self.counter % 26) as u8) as char)
        };
        Request::new(
            "POST",
            "/owncloud/sync",
            format!(
                r#"{{"doc":"{}","client":"{}","ops":[{{"content":"{}"}}]}}"#,
                self.doc, self.client, content
            )
            .into_bytes(),
        )
    }

    /// The leave request saving `snapshot`.
    pub fn leave(&self, snapshot: &str, seq: i64) -> Request {
        Request::new(
            "POST",
            "/owncloud/leave",
            format!(
                r#"{{"doc":"{}","client":"{}","snapshot":"{}","seq":{}}}"#,
                self.doc, self.client, snapshot, seq
            )
            .into_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync_req(server: &Arc<OwnCloudServer>, doc: &str, client: &str, ops: &str) -> Json {
        let req = Request::new(
            "POST",
            "/owncloud/sync",
            format!(r#"{{"doc":"{doc}","client":"{client}","ops":{ops}}}"#).into_bytes(),
        );
        let rsp = server.handle(&req);
        Json::parse_bytes(&rsp.body).unwrap()
    }

    #[test]
    fn ops_are_relayed_between_clients() {
        let s = Arc::new(OwnCloudServer::new());
        let _ = sync_req(&s, "d", "alice", r#"[{"content":"+a"}]"#);
        let out = sync_req(&s, "d", "bob", "[]");
        let ops = out.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].get("content").unwrap().as_str(), Some("+a"));
        // Bob does not receive them twice.
        let out = sync_req(&s, "d", "bob", "[]");
        assert!(out.get("ops").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn drop_attack_skips_op() {
        let s = Arc::new(OwnCloudServer::new());
        let _ = sync_req(&s, "d", "alice", r#"[{"content":"+a"},{"content":"+b"}]"#);
        s.set_attack(OwnCloudAttack::DropUpdate {
            doc: "d".into(),
            seq: 1,
        });
        let out = sync_req(&s, "d", "bob", "[]");
        let ops = out.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].get("seq").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn snapshot_save_and_serve() {
        let s = Arc::new(OwnCloudServer::new());
        let req = Request::new(
            "POST",
            "/owncloud/leave",
            br#"{"doc":"d","client":"alice","snapshot":"v1","seq":3}"#.to_vec(),
        );
        s.handle(&req);
        let req = Request::new(
            "POST",
            "/owncloud/join",
            br#"{"doc":"d","client":"bob"}"#.to_vec(),
        );
        let rsp = s.handle(&req);
        let j = Json::parse_bytes(&rsp.body).unwrap();
        assert_eq!(j.get("snapshot").unwrap().as_str(), Some("v1"));
        assert_eq!(j.get("seq").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn stale_snapshot_attack() {
        let s = Arc::new(OwnCloudServer::new());
        for (v, seq) in [("v1", 1), ("v2", 2)] {
            let req = Request::new(
                "POST",
                "/owncloud/leave",
                format!(r#"{{"doc":"d","client":"a","snapshot":"{v}","seq":{seq}}}"#).into_bytes(),
            );
            s.handle(&req);
        }
        s.set_attack(OwnCloudAttack::StaleSnapshot { doc: "d".into() });
        let req = Request::new(
            "POST",
            "/owncloud/join",
            br#"{"doc":"d","client":"bob"}"#.to_vec(),
        );
        let rsp = s.handle(&req);
        let j = Json::parse_bytes(&rsp.body).unwrap();
        assert_eq!(j.get("snapshot").unwrap().as_str(), Some("v1"));
    }

    #[test]
    fn edit_workload_shapes() {
        let mut w = EditWorkload::new("d", "alice");
        let mut saw_paragraph = false;
        for _ in 0..10 {
            let req = w.next_edit();
            let body = String::from_utf8(req.body).unwrap();
            if body.contains("paragraph-") {
                saw_paragraph = true;
            }
        }
        assert!(saw_paragraph);
    }
}

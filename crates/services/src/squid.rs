//! A Squid-like TLS-terminating forward proxy.
//!
//! Two TLS legs, as in the paper's Dropbox deployment (§6.4, §6.6):
//! clients connect to the proxy over STLS (terminated natively or via
//! LibSEAL — the audit point), and the proxy opens its own STLS
//! connection to the origin for each client connection. Every request
//! is forwarded verbatim and every response relayed back, so the Squid
//! figure's two-handshake overhead is reproduced.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::parse_request;
use libseal_tlsx::ssl::ReadOutcome;

use crate::client::HttpsClient;
use crate::tlsadapter::{TlsMode, TlsSession};
use crate::Result;

/// Proxy-side request metrics.
struct SquidMetrics {
    requests: libseal_telemetry::Counter,
    request_ns: libseal_telemetry::Histogram,
}

fn squid_metrics() -> &'static SquidMetrics {
    static M: std::sync::OnceLock<SquidMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| SquidMetrics {
        requests: libseal_telemetry::counter("services_squid_requests_total"),
        request_ns: libseal_telemetry::histogram("services_squid_request_ns"),
    })
}

/// Proxy configuration.
pub struct SquidConfig {
    /// TLS termination towards clients.
    pub tls: TlsMode,
    /// Worker threads.
    pub workers: usize,
    /// Origin server address.
    pub upstream: SocketAddr,
    /// CA roots trusted for the origin connection.
    pub upstream_roots: Vec<VerifyingKey>,
}

/// A running proxy.
pub struct SquidProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    requests_proxied: Arc<AtomicU64>,
}

impl SquidProxy {
    /// Starts the proxy on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn start(config: SquidConfig) -> Result<SquidProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_proxied = Arc::new(AtomicU64::new(0));
        let (tx, rx) = plat::channel::unbounded::<TcpStream>();
        let mut handles = Vec::new();

        {
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name("squid-accept".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((sock, _)) => {
                                    let _ = sock.set_nodelay(true);
                                    if tx.send(sock).is_err() {
                                        break;
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn squid accept"),
            );
        }

        for worker in 0..config.workers.max(1) {
            let rx = rx.clone();
            let tls = config.tls.clone();
            let shutdown = Arc::clone(&shutdown);
            let proxied = Arc::clone(&requests_proxied);
            let upstream = config.upstream;
            let roots = config.upstream_roots.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("squid-worker-{worker}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                                Ok(sock) => {
                                    let _ = proxy_connection(
                                        sock, &tls, worker, upstream, &roots, &proxied,
                                    );
                                }
                                Err(plat::channel::RecvTimeoutError::Timeout) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn squid worker"),
            );
        }

        Ok(SquidProxy {
            addr,
            shutdown,
            handles,
            requests_proxied,
        })
    }

    /// The proxy's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests proxied so far.
    pub fn requests_proxied(&self) -> u64 {
        self.requests_proxied.load(Ordering::Relaxed)
    }

    /// The process-wide telemetry registry the proxy reports into.
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Stops the proxy.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SquidProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn proxy_connection(
    mut sock: TcpStream,
    tls: &TlsMode,
    worker: usize,
    upstream: SocketAddr,
    roots: &[VerifyingKey],
    proxied: &AtomicU64,
) -> Result<()> {
    sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    // A slow-reading client must not wedge the worker on a blocked
    // write either.
    sock.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut session = tls.open_session(worker)?;
    let result = proxy_established(&mut session, &mut sock, upstream, roots, proxied);
    session.close();
    let _ = flush(&mut session, &mut sock);
    result
}

fn proxy_established(
    session: &mut TlsSession,
    sock: &mut TcpStream,
    upstream: SocketAddr,
    roots: &[VerifyingKey],
    proxied: &AtomicU64,
) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];

    // Client-side handshake.
    loop {
        flush(session, sock)?;
        if session.do_handshake()? {
            break;
        }
        flush(session, sock)?;
        let n = sock.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        session.provide_input(&buf[..n])?;
    }
    flush(session, sock)?;

    // The second TLS leg: one upstream connection per client
    // connection (as Squid does for tunnelled traffic).
    let origin = HttpsClient::new(upstream, roots.to_vec());
    let mut origin_conn = origin.connect()?;

    let mut plain = Vec::new();
    loop {
        let req = loop {
            if let Ok((req, used)) = parse_request(&plain) {
                plain.drain(..used);
                break req;
            }
            match session.ssl_read()? {
                ReadOutcome::Data(d) => plain.extend_from_slice(&d),
                ReadOutcome::WantRead => {
                    flush(session, sock)?;
                    let n = match sock.read(&mut buf) {
                        Ok(n) => n,
                        Err(_) => return Ok(()),
                    };
                    if n == 0 {
                        return Ok(());
                    }
                    session.provide_input(&buf[..n])?;
                }
                ReadOutcome::Closed => return Ok(()),
            }
        };
        let close = req
            .headers
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let started = std::time::Instant::now();
        {
            let _span = libseal_telemetry::global()
                .span("squid_request", libseal_telemetry::Side::Untrusted);
            let response = origin_conn.request(&req)?;
            session.ssl_write(&response.to_bytes())?;
            flush(session, sock)?;
        }
        squid_metrics().requests.inc();
        squid_metrics().request_ns.record_duration(started.elapsed());
        proxied.fetch_add(1, Ordering::Relaxed);
        if close {
            origin_conn.close();
            return Ok(());
        }
    }
}

fn flush(session: &mut TlsSession, sock: &mut TcpStream) -> Result<()> {
    let out = session.take_output()?;
    if !out.is_empty() {
        sock.write_all(&out)?;
    }
    Ok(())
}

//! A Squid-like TLS-terminating forward proxy.
//!
//! Two TLS legs, as in the paper's Dropbox deployment (§6.4, §6.6):
//! clients connect to the proxy over STLS (terminated natively or via
//! LibSEAL — the audit point), and the proxy opens its own STLS
//! connection to the origin for each client connection. Every request
//! is forwarded verbatim and every response relayed back, so the Squid
//! figure's two-handshake overhead is reproduced.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::{parse_request_limited, Limits, Response};
use libseal_httpx::ParseError;
use libseal_tlsx::attest::AttestationPolicy;
use libseal_tlsx::ssl::ReadOutcome;

use crate::client::HttpsClient;
use crate::event::PhaseTimeouts;
use crate::tlsadapter::{TlsMode, TlsSession};
use crate::Result;

/// Proxy-side request metrics.
struct SquidMetrics {
    requests: libseal_telemetry::Counter,
    request_ns: libseal_telemetry::Histogram,
    accept_errors: libseal_telemetry::Counter,
    malformed_requests: libseal_telemetry::Counter,
}

fn squid_metrics() -> &'static SquidMetrics {
    static M: std::sync::OnceLock<SquidMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| SquidMetrics {
        requests: libseal_telemetry::counter("services_squid_requests_total"),
        request_ns: libseal_telemetry::histogram("services_squid_request_ns"),
        accept_errors: libseal_telemetry::counter("services_squid_accept_errors_total"),
        malformed_requests: libseal_telemetry::counter("services_squid_malformed_requests_total"),
    })
}

/// Proxy configuration (builder).
pub struct SquidConfig {
    pub(crate) tls: TlsMode,
    pub(crate) workers: usize,
    pub(crate) upstream: SocketAddr,
    pub(crate) upstream_roots: Vec<VerifyingKey>,
    pub(crate) upstream_subject: String,
    pub(crate) upstream_attestation: Option<Arc<AttestationPolicy>>,
    pub(crate) event_loop: bool,
    pub(crate) idle_timeout: std::time::Duration,
    pub(crate) timeouts: PhaseTimeouts,
    pub(crate) max_connections: usize,
    pub(crate) drain_timeout: Duration,
    pub(crate) limits: Limits,
}

impl SquidConfig {
    /// A configuration with the default worker count (4), the
    /// event-driven core enabled and a 60 s idle-session timeout.
    /// `upstream` is the origin server; `upstream_roots` the CA roots
    /// trusted for its certificate, which must name
    /// `upstream_subject` (the proxy's upstream leg pins the subject —
    /// a valid certificate for some other host is rejected).
    pub fn new(
        tls: TlsMode,
        upstream: SocketAddr,
        upstream_roots: Vec<VerifyingKey>,
        upstream_subject: &str,
    ) -> SquidConfig {
        SquidConfig {
            tls,
            workers: 4,
            upstream,
            upstream_roots,
            upstream_subject: upstream_subject.to_string(),
            upstream_attestation: None,
            event_loop: true,
            idle_timeout: std::time::Duration::from_secs(60),
            timeouts: PhaseTimeouts::default(),
            max_connections: usize::MAX,
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }

    /// Worker threads: connection workers in threaded mode, job-pool
    /// carriers in event mode.
    #[must_use]
    pub fn workers(mut self, n: usize) -> SquidConfig {
        self.workers = n;
        self
    }

    /// Selects the event-driven core (default) or, with `false`, the
    /// paper's thread-per-connection serving model. Event mode falls
    /// back to threaded where readiness polling is unsupported.
    #[must_use]
    pub fn event_loop(mut self, on: bool) -> SquidConfig {
        self.event_loop = on;
        self
    }

    /// Event mode only: idle connections are evicted after this long
    /// without traffic.
    #[must_use]
    pub fn idle_timeout(mut self, d: std::time::Duration) -> SquidConfig {
        self.idle_timeout = d;
        self
    }

    /// Concurrent-connection cap: connections beyond it are refused
    /// immediately (shed) instead of queueing behind saturated
    /// workers. Defaults to unlimited.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> SquidConfig {
        self.max_connections = n.max(1);
        self
    }

    /// Deadline for completing the TLS handshake.
    #[must_use]
    pub fn handshake_timeout(mut self, d: Duration) -> SquidConfig {
        self.timeouts.handshake = d;
        self
    }

    /// Deadline for receiving a complete request head.
    #[must_use]
    pub fn header_timeout(mut self, d: Duration) -> SquidConfig {
        self.timeouts.header = d;
        self
    }

    /// Deadline for receiving a complete request body.
    #[must_use]
    pub fn body_timeout(mut self, d: Duration) -> SquidConfig {
        self.timeouts.body = d;
        self
    }

    /// Deadline for draining a response to a slow-reading client.
    #[must_use]
    pub fn write_timeout(mut self, d: Duration) -> SquidConfig {
        self.timeouts.write = d;
        self
    }

    /// Bound on how long a graceful drain waits for in-flight
    /// requests before tearing the rest down.
    #[must_use]
    pub fn drain_timeout(mut self, d: Duration) -> SquidConfig {
        self.drain_timeout = d;
        self
    }

    /// Request-size limits (head bytes, header count, body bytes).
    /// Oversized requests are rejected with 431/413 and the
    /// connection closed.
    #[must_use]
    pub fn http_limits(mut self, limits: Limits) -> SquidConfig {
        self.limits = limits;
        self
    }

    /// Requires the origin certificate to pass `policy` (RA-TLS) on
    /// the upstream leg: the embedded enclave quote must verify and
    /// commit to the certificate key before any request is forwarded.
    #[must_use]
    pub fn attestation(mut self, policy: Arc<AttestationPolicy>) -> SquidConfig {
        self.upstream_attestation = Some(policy);
        self
    }

    /// Drops any upstream attestation requirement (CA + subject
    /// checks only).
    #[must_use]
    pub fn no_attestation(mut self) -> SquidConfig {
        self.upstream_attestation = None;
        self
    }

    /// The upstream-leg client this configuration describes.
    fn origin_client(&self) -> HttpsClient {
        let client = HttpsClient::new(
            self.upstream,
            self.upstream_roots.clone(),
            &self.upstream_subject,
        );
        match &self.upstream_attestation {
            Some(policy) => client.attestation(Arc::clone(policy)),
            None => client,
        }
    }
}

/// The Squid personality of the shared event loop. The upstream leg
/// is per client connection (as Squid tunnels), opened lazily on the
/// first request *inside the worker job* — the origin handshake must
/// never block the reactor.
struct SquidApp {
    origin: HttpsClient,
    proxied: Arc<AtomicU64>,
}

impl crate::event::App for SquidApp {
    type Conn = Option<crate::client::PersistentConnection>;

    fn open_conn(&self) -> Self::Conn {
        None
    }

    fn handle(&self, conn: &mut Self::Conn, req: &libseal_httpx::http::Request) -> Response {
        if conn.is_none() {
            match self.origin.connect() {
                Ok(c) => *conn = Some(c),
                Err(_) => return Response::new(502, b"bad gateway".to_vec()),
            }
        }
        match conn.as_mut().expect("origin leg just opened").request(req) {
            Ok(rsp) => rsp,
            Err(_) => {
                // The origin leg died; drop it so the next request
                // redials instead of failing forever.
                *conn = None;
                Response::new(502, b"bad gateway".to_vec())
            }
        }
    }

    fn close_conn(&self, conn: &mut Self::Conn) {
        if let Some(mut origin) = conn.take() {
            origin.close();
        }
    }

    fn span_name(&self) -> &'static str {
        "squid_request"
    }

    fn on_request(&self, _path: &str, started: std::time::Instant) {
        squid_metrics().requests.inc();
        squid_metrics()
            .request_ns
            .record_duration(started.elapsed());
        self.proxied.fetch_add(1, Ordering::Relaxed);
    }

    fn on_malformed(&self) {
        squid_metrics().malformed_requests.inc();
    }

    fn on_accept_error(&self) {
        squid_metrics().accept_errors.inc();
    }
}

/// A running proxy.
pub struct SquidProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Graceful-drain request ([`SquidProxy::drain`]): stop accepting,
    /// deliver in-flight responses, then exit.
    draining: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    requests_proxied: Arc<AtomicU64>,
    /// Present in event mode: interrupts the parked reactor on stop.
    waker: Option<plat::reactor::Waker>,
    /// Kept to seal pending audit batches to durable after drain.
    tls: TlsMode,
}

impl SquidProxy {
    /// Starts the proxy on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn start(config: SquidConfig) -> Result<SquidProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let requests_proxied = Arc::new(AtomicU64::new(0));

        if config.event_loop && plat::reactor::supported() {
            let app = Arc::new(SquidApp {
                origin: config.origin_client(),
                proxied: Arc::clone(&requests_proxied),
            });
            let handle = crate::event::serve(
                listener,
                crate::event::EventConfig {
                    tls: config.tls.clone(),
                    workers: config.workers,
                    idle_timeout: config.idle_timeout,
                    timeouts: config.timeouts,
                    max_connections: config.max_connections,
                    drain_timeout: config.drain_timeout,
                    limits: config.limits,
                },
                app,
                Arc::clone(&shutdown),
                Arc::clone(&draining),
            )?;
            return Ok(SquidProxy {
                addr,
                shutdown,
                draining,
                handles: vec![handle.join],
                requests_proxied,
                waker: Some(handle.waker),
                tls: config.tls,
            });
        }

        let (tx, rx) = plat::channel::unbounded::<TcpStream>();
        let mut handles = Vec::new();
        // Live connections (queued + being served): the threaded
        // cap's admission counter.
        let live = Arc::new(AtomicUsize::new(0));

        {
            let shutdown = Arc::clone(&shutdown);
            let draining = Arc::clone(&draining);
            let live = Arc::clone(&live);
            let cap = config.max_connections;
            handles.push(
                std::thread::Builder::new()
                    .name("squid-accept".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) && !draining.load(Ordering::Acquire)
                        {
                            match plat::failpoint::check("services::accept")
                                .and_then(|()| listener.accept())
                            {
                                Ok((sock, _)) => {
                                    if live.load(Ordering::Acquire) >= cap {
                                        libseal_telemetry::counter(
                                            "services_threaded_sheds_total",
                                        )
                                        .inc();
                                        drop(sock);
                                        continue;
                                    }
                                    let _ = sock.set_nodelay(true);
                                    live.fetch_add(1, Ordering::AcqRel);
                                    if tx.send(sock).is_err() {
                                        break;
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Err(_) => {
                                    // Transient accept failures
                                    // (ECONNABORTED, EMFILE, EINTR)
                                    // must not silence the proxy for
                                    // the rest of its lifetime: count,
                                    // back off briefly, retry.
                                    // Shutdown is the only exit.
                                    squid_metrics().accept_errors.inc();
                                    std::thread::sleep(std::time::Duration::from_millis(5));
                                }
                            }
                        }
                    })
                    .expect("spawn squid accept"),
            );
        }

        // Shared connection counter: each accepted connection gets a
        // stable id the audit plane hashes for shard routing.
        let conn_seq = Arc::new(AtomicU64::new(1));
        for worker in 0..config.workers.max(1) {
            let rx = rx.clone();
            let tls = config.tls.clone();
            let shutdown = Arc::clone(&shutdown);
            let draining = Arc::clone(&draining);
            let proxied = Arc::clone(&requests_proxied);
            let live = Arc::clone(&live);
            let conn_seq = Arc::clone(&conn_seq);
            let origin = config.origin_client();
            let timeouts = config.timeouts;
            let limits = config.limits;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("squid-worker-{worker}"))
                    .spawn(move || {
                        let halt =
                            || shutdown.load(Ordering::Acquire) || draining.load(Ordering::Acquire);
                        loop {
                            if halt() {
                                break;
                            }
                            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                                Ok(sock) => {
                                    let conn_id = conn_seq.fetch_add(1, Ordering::Relaxed);
                                    let _ = proxy_connection(
                                        sock, &tls, worker, conn_id, &origin, &proxied, &halt,
                                        &timeouts, &limits,
                                    );
                                    live.fetch_sub(1, Ordering::AcqRel);
                                }
                                Err(plat::channel::RecvTimeoutError::Timeout) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn squid worker"),
            );
        }

        Ok(SquidProxy {
            addr,
            shutdown,
            draining,
            handles,
            requests_proxied,
            waker: None,
            tls: config.tls,
        })
    }

    /// The proxy's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests proxied so far.
    pub fn requests_proxied(&self) -> u64 {
        self.requests_proxied.load(Ordering::Relaxed)
    }

    /// The process-wide telemetry registry the proxy reports into.
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Stops the proxy.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Gracefully drains the proxy: stop accepting, deliver in-flight
    /// responses (bounded by the configured drain deadline in event
    /// mode), then seal pending audit batches to durable storage.
    pub fn drain(mut self) {
        self.draining.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let TlsMode::LibSeal(ls) = &self.tls {
            let _ = ls.drain(0);
        }
    }
}

impl Drop for SquidProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn proxy_connection(
    mut sock: TcpStream,
    tls: &TlsMode,
    worker: usize,
    conn_id: u64,
    origin: &HttpsClient,
    proxied: &AtomicU64,
    halt: &dyn Fn() -> bool,
    timeouts: &PhaseTimeouts,
    limits: &Limits,
) -> Result<()> {
    // Short socket-level tick so the blocking read loop can observe
    // halt/drain requests and phase deadlines between reads.
    sock.set_read_timeout(Some(crate::event::THREAD_READ_TICK))?;
    // A slow-reading client must not wedge the worker on a blocked
    // write either.
    sock.set_write_timeout(Some(timeouts.write))?;
    let mut session = tls.open_session(worker, conn_id)?;
    let result = proxy_established(
        &mut session,
        &mut sock,
        origin,
        proxied,
        halt,
        timeouts,
        limits,
    );
    session.close();
    let _ = flush(&mut session, &mut sock);
    result
}

#[allow(clippy::too_many_arguments)]
fn proxy_established(
    session: &mut TlsSession,
    sock: &mut TcpStream,
    origin: &HttpsClient,
    proxied: &AtomicU64,
    halt: &dyn Fn() -> bool,
    timeouts: &PhaseTimeouts,
    limits: &Limits,
) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];

    // Client-side handshake, bounded: a client that connects and
    // trickles (or never sends) handshake bytes is evicted at the
    // deadline instead of pinning the worker.
    let hs_deadline = Instant::now() + timeouts.handshake;
    loop {
        flush(session, sock)?;
        if session.do_handshake()? {
            break;
        }
        flush(session, sock)?;
        let n = match crate::event::read_deadline(sock, &mut buf, hs_deadline, halt) {
            Ok(n) => n,
            Err(_) => {
                libseal_telemetry::counter("services_threaded_handshake_timeouts_total").inc();
                return Ok(());
            }
        };
        if n == 0 {
            return Ok(());
        }
        session.provide_input(&buf[..n])?;
    }
    flush(session, sock)?;

    // The second TLS leg: one upstream connection per client
    // connection (as Squid does for tunnelled traffic).
    let mut origin_conn = origin.connect()?;

    let mut plain = Vec::new();
    loop {
        // Per-phase deadlines: the whole head within the header
        // deadline, the whole body within the body deadline.
        let mut deadline = Instant::now() + timeouts.header;
        let mut in_body = false;
        let req = loop {
            match parse_request_limited(&plain, limits) {
                Ok((req, used)) => {
                    plain.drain(..used);
                    break req;
                }
                Err(ParseError::Incomplete) => {
                    if !in_body && libseal_httpx::http::head_complete(&plain) {
                        in_body = true;
                        deadline = Instant::now() + timeouts.body;
                    }
                }
                Err(e) => {
                    // Provably unservable (malformed, oversized head,
                    // oversized body): previously these bytes
                    // accumulated in `plain` forever. Answer with the
                    // typed status and close.
                    let status = e.close_status();
                    if status == 400 {
                        squid_metrics().malformed_requests.inc();
                    } else {
                        libseal_telemetry::counter("services_threaded_limit_rejections_total")
                            .inc();
                    }
                    let rsp = Response::new(status, b"request rejected".to_vec());
                    session.ssl_write(&rsp.to_bytes())?;
                    flush(session, sock)?;
                    origin_conn.close();
                    return Ok(());
                }
            }
            match session.ssl_read()? {
                ReadOutcome::Data(d) => plain.extend_from_slice(&d),
                ReadOutcome::WantRead => {
                    flush(session, sock)?;
                    // Retry EINTR; deadline expiry, halt and real
                    // transport errors end the connection.
                    let n = match crate::event::read_deadline(sock, &mut buf, deadline, halt) {
                        Ok(n) => n,
                        Err(_) => {
                            if !plain.is_empty() {
                                libseal_telemetry::counter(if in_body {
                                    "services_threaded_body_timeouts_total"
                                } else {
                                    "services_threaded_header_timeouts_total"
                                })
                                .inc();
                            }
                            origin_conn.close();
                            return Ok(());
                        }
                    };
                    if n == 0 {
                        return Ok(());
                    }
                    session.provide_input(&buf[..n])?;
                }
                ReadOutcome::Closed => return Ok(()),
            }
        };
        let close = req
            .headers
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let started = std::time::Instant::now();
        {
            let _span = libseal_telemetry::global()
                .span("squid_request", libseal_telemetry::Side::Untrusted);
            let response = origin_conn.request(&req)?;
            session.ssl_write(&response.to_bytes())?;
            flush(session, sock)?;
        }
        squid_metrics().requests.inc();
        squid_metrics()
            .request_ns
            .record_duration(started.elapsed());
        proxied.fetch_add(1, Ordering::Relaxed);
        if close || halt() {
            origin_conn.close();
            return Ok(());
        }
    }
}

fn flush(session: &mut TlsSession, sock: &mut TcpStream) -> Result<()> {
    let out = session.take_output()?;
    if !out.is_empty() {
        sock.write_all(&out)?;
    }
    Ok(())
}

//! A Dropbox-like file-metadata service (§6.1): clients commit files
//! as blocklists (`commit_batch`) and poll their file list (`list`).
//! Since the real Dropbox cannot be instrumented, the paper routes
//! traffic through a Squid proxy; here the origin is simulated, with a
//! configurable WAN latency floor standing in for the measured 76 ms
//! to Dropbox's servers (§6.4).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use libseal_httpx::http::{Request, Response};
use libseal_httpx::json::Json;
use plat::sync::Mutex;

use crate::apache::Router;

/// Integrity attacks the server can be told to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropboxAttack {
    /// Serve faithfully.
    None,
    /// Serve a corrupted blocklist for one file.
    CorruptBlocklist {
        /// Account.
        account: String,
        /// File whose blocklist is corrupted.
        file: String,
    },
    /// Omit one live file from listings.
    HideFile {
        /// Account.
        account: String,
        /// File to hide.
        file: String,
    },
    /// List a file that was never committed.
    PhantomFile {
        /// Account.
        account: String,
        /// Invented file name.
        file: String,
    },
}

#[derive(Clone)]
struct FileMeta {
    blocks: Vec<String>,
    size: i64,
}

/// The Dropbox metadata origin server.
pub struct DropboxServer {
    accounts: Mutex<BTreeMap<String, BTreeMap<String, FileMeta>>>,
    attack: Mutex<DropboxAttack>,
    /// Simulated WAN round-trip floor added to each request.
    pub wan_latency: Duration,
}

impl Default for DropboxServer {
    fn default() -> Self {
        Self::new()
    }
}

impl DropboxServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        DropboxServer {
            accounts: Mutex::new(BTreeMap::new()),
            attack: Mutex::new(DropboxAttack::None),
            wan_latency: Duration::ZERO,
        }
    }

    /// Creates a server with a WAN latency floor.
    pub fn with_wan_latency(latency: Duration) -> Self {
        DropboxServer {
            wan_latency: latency,
            ..Self::new()
        }
    }

    /// Arms an attack.
    pub fn set_attack(&self, attack: DropboxAttack) {
        *self.attack.lock() = attack;
    }

    fn commit_batch(&self, account: &str, commits: &[Json]) -> Json {
        let mut accounts = self.accounts.lock();
        let files = accounts.entry(account.to_string()).or_default();
        let mut accepted = 0;
        for c in commits {
            let Some(file) = c.get("file").and_then(Json::as_str) else {
                continue;
            };
            let size = c.get("size").and_then(Json::as_i64).unwrap_or(0);
            if size == -1 {
                files.remove(file);
            } else {
                let blocks: Vec<String> = c
                    .get("blocks")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                files.insert(file.to_string(), FileMeta { blocks, size });
            }
            accepted += 1;
        }
        Json::object([
            ("ok", Json::Bool(true)),
            ("accepted", Json::num(accepted as f64)),
        ])
    }

    fn list(&self, account: &str) -> Json {
        let accounts = self.accounts.lock();
        let attack = self.attack.lock().clone();
        let mut out = Vec::new();
        if let Some(files) = accounts.get(account) {
            for (name, meta) in files {
                let mut blocks = meta.blocks.clone();
                match &attack {
                    DropboxAttack::HideFile { account: aa, file }
                        if aa == account && file == name =>
                    {
                        continue;
                    }
                    DropboxAttack::CorruptBlocklist { account: aa, file }
                        if aa == account && file == name =>
                    {
                        blocks = vec!["CORRUPTED".to_string()];
                    }
                    _ => {}
                }
                out.push(Json::object([
                    ("file", Json::str(name.clone())),
                    (
                        "blocks",
                        Json::Array(blocks.into_iter().map(Json::String).collect()),
                    ),
                    ("size", Json::num(meta.size as f64)),
                ]));
            }
        }
        if let DropboxAttack::PhantomFile { account: aa, file } = &attack {
            if aa == account {
                out.push(Json::object([
                    ("file", Json::str(file.clone())),
                    ("blocks", Json::Array(vec![Json::str("ffff")])),
                    ("size", Json::num(1.0)),
                ]));
            }
        }
        Json::object([("files", Json::Array(out))])
    }
}

impl Router for Arc<DropboxServer> {
    fn handle(&self, req: &Request) -> Response {
        if !self.wan_latency.is_zero() {
            std::thread::sleep(self.wan_latency);
        }
        if req.method != "POST" {
            return Response::new(405, b"POST only".to_vec());
        }
        let Ok(body) = Json::parse_bytes(&req.body) else {
            return Response::new(400, b"bad json".to_vec());
        };
        let account = body.get("account").and_then(Json::as_str).unwrap_or("");
        if account.is_empty() {
            return Response::new(400, b"missing account".to_vec());
        }
        let out = match req.path() {
            "/dropbox/commit_batch" => {
                let empty: Vec<Json> = Vec::new();
                let commits = body
                    .get("commits")
                    .and_then(Json::as_array)
                    .unwrap_or(&empty);
                self.commit_batch(account, commits)
            }
            "/dropbox/list" => self.list(account),
            _ => return Response::new(404, b"unknown endpoint".to_vec()),
        };
        Response::new(200, out.to_string().into_bytes())
    }
}

/// Builds the requests of the Drago et al. style benchmark: create and
/// delete text/binary files in a folder (§6.4).
pub struct FileWorkload {
    account: String,
    host: String,
    counter: u64,
}

impl FileWorkload {
    /// Creates a workload for `account` from `host`.
    pub fn new(account: &str, host: &str) -> Self {
        FileWorkload {
            account: account.to_string(),
            host: host.to_string(),
            counter: 0,
        }
    }

    fn block_hash(&self, n: u64) -> String {
        let h = libseal_crypto::sha2::Sha256::digest(format!("{}:{}", self.account, n).as_bytes());
        h.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The next operation: mostly creates, some deletes, periodic
    /// lists.
    pub fn next_request(&mut self) -> Request {
        self.counter += 1;
        let n = self.counter;
        if n.is_multiple_of(4) {
            return Request::new(
                "POST",
                "/dropbox/list",
                format!(r#"{{"account":"{}","host":"{}"}}"#, self.account, self.host).into_bytes(),
            );
        }
        let (file, size): (String, i64) = if n.is_multiple_of(7) && n > 7 {
            (format!("file-{}.bin", n - 7), -1) // delete an older file
        } else {
            (format!("file-{n}.bin"), 4096 * (1 + (n % 4) as i64))
        };
        let blocks = if size >= 0 {
            format!(r#"["{}"]"#, self.block_hash(n))
        } else {
            "[]".to_string()
        };
        Request::new(
            "POST",
            "/dropbox/commit_batch",
            format!(
                r#"{{"account":"{}","host":"{}","commits":[{{"file":"{}","blocks":{},"size":{}}}]}}"#,
                self.account, self.host, file, blocks, size
            )
            .into_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(s: &Arc<DropboxServer>, path: &str, body: &str) -> Json {
        let req = Request::new("POST", path, body.as_bytes().to_vec());
        let rsp = s.handle(&req);
        assert_eq!(rsp.status, 200, "{}", String::from_utf8_lossy(&rsp.body));
        Json::parse_bytes(&rsp.body).unwrap()
    }

    #[test]
    fn commit_and_list() {
        let s = Arc::new(DropboxServer::new());
        call(
            &s,
            "/dropbox/commit_batch",
            r#"{"account":"a","host":"h","commits":[{"file":"x","blocks":["b1"],"size":10}]}"#,
        );
        let out = call(&s, "/dropbox/list", r#"{"account":"a","host":"h"}"#);
        let files = out.get("files").unwrap().as_array().unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].get("file").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn delete_removes_file() {
        let s = Arc::new(DropboxServer::new());
        call(
            &s,
            "/dropbox/commit_batch",
            r#"{"account":"a","host":"h","commits":[{"file":"x","blocks":["b1"],"size":10}]}"#,
        );
        call(
            &s,
            "/dropbox/commit_batch",
            r#"{"account":"a","host":"h","commits":[{"file":"x","blocks":[],"size":-1}]}"#,
        );
        let out = call(&s, "/dropbox/list", r#"{"account":"a","host":"h"}"#);
        assert!(out.get("files").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn attacks_change_listings() {
        let s = Arc::new(DropboxServer::new());
        call(
            &s,
            "/dropbox/commit_batch",
            r#"{"account":"a","host":"h","commits":[{"file":"x","blocks":["b1"],"size":10}]}"#,
        );
        s.set_attack(DropboxAttack::CorruptBlocklist {
            account: "a".into(),
            file: "x".into(),
        });
        let out = call(&s, "/dropbox/list", r#"{"account":"a","host":"h"}"#);
        let files = out.get("files").unwrap().as_array().unwrap();
        assert_eq!(
            files[0].get("blocks").unwrap().as_array().unwrap()[0].as_str(),
            Some("CORRUPTED")
        );
        s.set_attack(DropboxAttack::HideFile {
            account: "a".into(),
            file: "x".into(),
        });
        let out = call(&s, "/dropbox/list", r#"{"account":"a","host":"h"}"#);
        assert!(out.get("files").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn workload_generates_valid_requests() {
        let s = Arc::new(DropboxServer::new());
        let mut w = FileWorkload::new("a", "h");
        for _ in 0..20 {
            let req = w.next_request();
            let rsp = s.handle(&req);
            assert_eq!(rsp.status, 200);
        }
    }

    #[test]
    fn accounts_are_isolated() {
        let s = Arc::new(DropboxServer::new());
        call(
            &s,
            "/dropbox/commit_batch",
            r#"{"account":"a","host":"h","commits":[{"file":"x","blocks":["b1"],"size":10}]}"#,
        );
        let out = call(&s, "/dropbox/list", r#"{"account":"b","host":"h"}"#);
        assert!(out.get("files").unwrap().as_array().unwrap().is_empty());
    }
}

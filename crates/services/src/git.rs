//! An in-memory Git backend speaking the smart-HTTP-like dialect the
//! Git SSM audits, plus attack injection and a synthetic history
//! generator standing in for the paper's six Apache-foundation
//! repository replays (§6.4).

use std::collections::BTreeMap;
use std::sync::Arc;

use libseal_crypto::sha2::Sha256;
use libseal_httpx::http::{Request, Response};
use plat::sync::Mutex;

use crate::apache::Router;

/// The all-zero commit id that deletes a ref.
pub const ZERO_CID: &str = "0000000000000000000000000000000000000000";

/// Integrity attacks the backend can be told to perform (§6.1: the
/// violations Git's own hash chain does NOT prevent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GitAttack {
    /// Serve faithfully.
    None,
    /// Advertise an old commit for a branch (rollback).
    Rollback {
        /// Target repository.
        repo: String,
        /// Target branch.
        branch: String,
        /// The stale commit id to serve.
        old_cid: String,
    },
    /// Advertise another branch's commit (teleport).
    Teleport {
        /// Target repository.
        repo: String,
        /// Branch whose pointer is teleported.
        branch: String,
        /// Branch whose commit is served instead.
        from_branch: String,
    },
    /// Omit a branch from advertisements (reference deletion).
    HideRef {
        /// Target repository.
        repo: String,
        /// Branch to hide.
        branch: String,
    },
}

#[derive(Default)]
struct Repo {
    /// refname -> commit id.
    refs: BTreeMap<String, String>,
    /// Full history per branch (for rollback attacks).
    history: BTreeMap<String, Vec<String>>,
}

/// The Git service backend.
pub struct GitBackend {
    repos: Mutex<BTreeMap<String, Repo>>,
    attack: Mutex<GitAttack>,
}

impl Default for GitBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl GitBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        GitBackend {
            repos: Mutex::new(BTreeMap::new()),
            attack: Mutex::new(GitAttack::None),
        }
    }

    /// Arms an attack.
    pub fn set_attack(&self, attack: GitAttack) {
        *self.attack.lock() = attack;
    }

    /// Applies receive-pack commands; returns per-ref statuses.
    pub fn receive_pack(&self, repo: &str, body: &str) -> String {
        let mut repos = self.repos.lock();
        let r = repos.entry(repo.to_string()).or_default();
        let mut out = String::new();
        for line in body.lines() {
            let mut parts = line.split_whitespace();
            let (Some(_old), Some(new), Some(refname)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if new == ZERO_CID {
                r.refs.remove(refname);
                out.push_str(&format!("ok {refname} deleted\n"));
            } else {
                r.refs.insert(refname.to_string(), new.to_string());
                r.history
                    .entry(refname.to_string())
                    .or_default()
                    .push(new.to_string());
                out.push_str(&format!("ok {refname}\n"));
            }
        }
        out
    }

    /// Produces the ref advertisement for a fetch, applying any armed
    /// attack.
    pub fn advertise(&self, repo: &str) -> String {
        let repos = self.repos.lock();
        let Some(r) = repos.get(repo) else {
            return String::new();
        };
        let attack = self.attack.lock().clone();
        let mut out = String::new();
        for (refname, cid) in &r.refs {
            let mut cid = cid.clone();
            let mut skip = false;
            match &attack {
                GitAttack::None => {}
                GitAttack::Rollback {
                    repo: ar,
                    branch,
                    old_cid,
                } if ar == repo && branch == refname => {
                    cid = old_cid.clone();
                }
                GitAttack::Teleport {
                    repo: ar,
                    branch,
                    from_branch,
                } if ar == repo && branch == refname => {
                    if let Some(other) = r.refs.get(from_branch) {
                        cid = other.clone();
                    }
                }
                GitAttack::HideRef { repo: ar, branch } if ar == repo && branch == refname => {
                    skip = true;
                }
                _ => {}
            }
            if !skip {
                out.push_str(&format!("{cid} {refname}\n"));
            }
        }
        out
    }

    /// Commit ids previously pushed to `branch` (oldest first).
    pub fn branch_history(&self, repo: &str, branch: &str) -> Vec<String> {
        self.repos
            .lock()
            .get(repo)
            .and_then(|r| r.history.get(branch).cloned())
            .unwrap_or_default()
    }
}

impl Router for Arc<GitBackend> {
    fn handle(&self, req: &Request) -> Response {
        let path = req.path().to_string();
        if req.method == "POST" {
            if let Some(repo) = path
                .strip_prefix("/repo/")
                .and_then(|p| p.strip_suffix("/git-receive-pack"))
            {
                let body = String::from_utf8_lossy(&req.body).to_string();
                let out = self.receive_pack(repo, &body);
                return Response::new(200, out.into_bytes());
            }
        }
        if req.method == "GET"
            && path.starts_with("/repo/")
            && path.ends_with("/info/refs")
            && req.query_param("service") == Some("git-upload-pack")
        {
            let repo = path
                .strip_prefix("/repo/")
                .and_then(|p| p.strip_suffix("/info/refs"))
                .unwrap_or("")
                .trim_end_matches('/');
            return Response::new(200, self.advertise(repo).into_bytes());
        }
        Response::new(404, b"not a git endpoint".to_vec())
    }
}

/// A synthetic commit-history generator: deterministic pseudo-random
/// pushes and fetches across branches, standing in for the paper's
/// replay of real repositories [5-10].
pub struct HistoryGenerator {
    repo: String,
    branches: Vec<String>,
    counter: u64,
    seed: u64,
}

/// One generated client operation.
#[derive(Clone, Debug)]
pub enum GitOp {
    /// Push: receive-pack body.
    Push {
        /// Target repository.
        repo: String,
        /// Request body (command lines).
        body: String,
    },
    /// Fetch: ref advertisement request.
    Fetch {
        /// Target repository.
        repo: String,
    },
}

impl HistoryGenerator {
    /// Creates a generator for `repo` with `branch_count` branches.
    pub fn new(repo: &str, branch_count: usize, seed: u64) -> Self {
        let branches = (0..branch_count.max(1))
            .map(|i| {
                if i == 0 {
                    "refs/heads/main".to_string()
                } else {
                    format!("refs/heads/branch-{i}")
                }
            })
            .collect();
        HistoryGenerator {
            repo: repo.to_string(),
            branches,
            counter: 0,
            seed,
        }
    }

    fn cid(&self, n: u64) -> String {
        let h = Sha256::digest(format!("{}:{}:{}", self.repo, self.seed, n).as_bytes());
        h.iter().take(20).map(|b| format!("{b:02x}")).collect()
    }

    /// Produces the next operation: roughly 2 pushes per fetch, like a
    /// commit-replay workload.
    pub fn next_op(&mut self) -> GitOp {
        self.counter += 1;
        let n = self.counter;
        if n.is_multiple_of(3) {
            GitOp::Fetch {
                repo: self.repo.clone(),
            }
        } else {
            let branch = &self.branches[(n as usize) % self.branches.len()];
            let old = if n > self.branches.len() as u64 {
                self.cid(n - self.branches.len() as u64)
            } else {
                ZERO_CID.to_string()
            };
            GitOp::Push {
                repo: self.repo.clone(),
                body: format!("{old} {} {branch}\n", self.cid(n)),
            }
        }
    }

    /// Renders an op as an HTTP request.
    pub fn to_request(op: &GitOp) -> Request {
        match op {
            GitOp::Push { repo, body } => Request::new(
                "POST",
                &format!("/repo/{repo}/git-receive-pack"),
                body.clone().into_bytes(),
            ),
            GitOp::Fetch { repo } => Request::new(
                "GET",
                &format!("/repo/{repo}/info/refs?service=git-upload-pack"),
                Vec::new(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_advertise() {
        let g = GitBackend::new();
        g.receive_pack("r", "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n");
        let ad = g.advertise("r");
        assert!(ad.contains("c1 refs/heads/main"));
        assert!(ad.contains("d1 refs/heads/dev"));
    }

    #[test]
    fn deletion_removes_ref() {
        let g = GitBackend::new();
        g.receive_pack("r", "0 c1 refs/heads/main\n");
        g.receive_pack("r", &format!("c1 {ZERO_CID} refs/heads/main\n"));
        assert!(g.advertise("r").is_empty());
    }

    #[test]
    fn rollback_attack_changes_advertisement() {
        let g = GitBackend::new();
        g.receive_pack("r", "0 c1 refs/heads/main\n");
        g.receive_pack("r", "c1 c2 refs/heads/main\n");
        g.set_attack(GitAttack::Rollback {
            repo: "r".into(),
            branch: "refs/heads/main".into(),
            old_cid: "c1".into(),
        });
        assert!(g.advertise("r").contains("c1 refs/heads/main"));
    }

    #[test]
    fn teleport_attack_swaps_pointers() {
        let g = GitBackend::new();
        g.receive_pack("r", "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n");
        g.set_attack(GitAttack::Teleport {
            repo: "r".into(),
            branch: "refs/heads/main".into(),
            from_branch: "refs/heads/dev".into(),
        });
        assert!(g.advertise("r").contains("d1 refs/heads/main"));
    }

    #[test]
    fn hide_ref_attack_omits_branch() {
        let g = GitBackend::new();
        g.receive_pack("r", "0 c1 refs/heads/main\n0 d1 refs/heads/dev\n");
        g.set_attack(GitAttack::HideRef {
            repo: "r".into(),
            branch: "refs/heads/dev".into(),
        });
        let ad = g.advertise("r");
        assert!(ad.contains("main"));
        assert!(!ad.contains("dev"));
    }

    #[test]
    fn generator_produces_valid_ops() {
        let mut g = HistoryGenerator::new("r", 3, 42);
        let backend = GitBackend::new();
        let mut pushes = 0;
        let mut fetches = 0;
        for _ in 0..30 {
            match g.next_op() {
                GitOp::Push { repo, body } => {
                    backend.receive_pack(&repo, &body);
                    pushes += 1;
                }
                GitOp::Fetch { repo } => {
                    let _ = backend.advertise(&repo);
                    fetches += 1;
                }
            }
        }
        assert!(pushes > fetches);
        assert!(fetches > 0);
        assert!(!backend.advertise("r").is_empty());
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = HistoryGenerator::new("r", 2, 7);
        let mut b = HistoryGenerator::new("r", 2, 7);
        for _ in 0..10 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(format!("{oa:?}"), format!("{ob:?}"));
        }
    }
}

//! A uniform server-side TLS session interface over either the plain
//! STLS library (the "LibreSSL" baseline) or a LibSEAL instance —
//! demonstrating that LibSEAL is a drop-in replacement (§4.1).

use std::sync::Arc;

use libseal::plane::AuditPlane;
use libseal_crypto::ed25519::SigningKey;
use libseal_crypto::SystemRng;
use libseal_tlsx::cert::Certificate;
use libseal_tlsx::ssl::{ReadOutcome, Role, Ssl, SslConfig};

use crate::Result;

/// How a server terminates TLS.
//
// The variant size gap (inline certificate vs `Arc`) is irrelevant:
// one value exists per server and it is cloned per worker thread, so
// boxing `Native` would only complicate every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum TlsMode {
    /// Directly with the STLS library (native baseline).
    Native {
        /// Server certificate.
        cert: Certificate,
        /// Its private key.
        key: SigningKey,
    },
    /// Through a LibSEAL audit plane — a single enclave or a sharded
    /// fleet, per its configuration; the server never learns which.
    LibSeal(Arc<dyn AuditPlane>),
}

/// One server-side TLS session under either mode.
pub enum TlsSession {
    /// Plain STLS session.
    Native(Box<Ssl>),
    /// LibSEAL-managed session: (plane, worker slot, session id).
    LibSeal(Arc<dyn AuditPlane>, usize, u64),
}

impl TlsMode {
    /// Opens a session; `worker` is the application-thread slot used
    /// for asynchronous enclave calls and `affinity` a stable
    /// connection id a sharded audit plane hashes to pick the
    /// session's shard (ignored otherwise).
    ///
    /// # Errors
    ///
    /// Enclave entry failures (LibSEAL mode only).
    pub fn open_session(&self, worker: usize, affinity: u64) -> Result<TlsSession> {
        match self {
            TlsMode::Native { cert, key } => {
                let cfg = Arc::new(SslConfig {
                    role: Role::Server,
                    cert: Some(cert.clone()),
                    key: Some(key.clone()),
                    ca_roots: Vec::new(),
                    verify_peer: false,
                    expected_subject: None,
                    attestation: None,
                });
                let mut entropy = [0u8; 64];
                SystemRng::new().fill(&mut entropy);
                Ok(TlsSession::Native(Box::new(Ssl::new(cfg, entropy))))
            }
            TlsMode::LibSeal(ls) => {
                let sid = ls.open_session(worker, affinity)?;
                Ok(TlsSession::LibSeal(Arc::clone(ls), worker, sid))
            }
        }
    }
}

impl TlsSession {
    /// Feeds wire ciphertext.
    ///
    /// # Errors
    ///
    /// Session/enclave failures.
    pub fn provide_input(&mut self, data: &[u8]) -> Result<()> {
        match self {
            TlsSession::Native(ssl) => {
                ssl.provide_input(data);
                Ok(())
            }
            TlsSession::LibSeal(ls, w, sid) => Ok(ls.provide_input(*w, *sid, data)?),
        }
    }

    /// Takes ciphertext for the wire.
    ///
    /// # Errors
    ///
    /// Session/enclave failures.
    pub fn take_output(&mut self) -> Result<Vec<u8>> {
        match self {
            TlsSession::Native(ssl) => Ok(ssl.take_output()),
            TlsSession::LibSeal(ls, w, sid) => Ok(ls.take_output(*w, *sid)?),
        }
    }

    /// Progresses the handshake; true when established.
    ///
    /// # Errors
    ///
    /// Fatal handshake failures.
    pub fn do_handshake(&mut self) -> Result<bool> {
        match self {
            TlsSession::Native(ssl) => Ok(ssl.do_handshake()?),
            TlsSession::LibSeal(ls, w, sid) => Ok(ls.do_handshake(*w, *sid)?),
        }
    }

    /// Reads decrypted application data.
    ///
    /// # Errors
    ///
    /// TLS failures.
    pub fn ssl_read(&mut self) -> Result<ReadOutcome> {
        match self {
            TlsSession::Native(ssl) => Ok(ssl.ssl_read()?),
            TlsSession::LibSeal(ls, w, sid) => Ok(ls.ssl_read(*w, *sid)?),
        }
    }

    /// Writes response plaintext.
    ///
    /// # Errors
    ///
    /// TLS failures.
    pub fn ssl_write(&mut self, data: &[u8]) -> Result<()> {
        match self {
            TlsSession::Native(ssl) => {
                ssl.ssl_write(data)?;
                Ok(())
            }
            TlsSession::LibSeal(ls, w, sid) => Ok(ls.ssl_write(*w, *sid, data)?),
        }
    }

    /// Closes the session.
    pub fn close(&mut self) {
        match self {
            TlsSession::Native(ssl) => ssl.send_close(),
            TlsSession::LibSeal(ls, w, sid) => {
                let _ = ls.close_session(*w, *sid);
            }
        }
    }
}

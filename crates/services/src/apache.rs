//! An Apache-like web server terminating STLS.
//!
//! Two serving models, selected by [`ApacheConfig::event_loop`]:
//!
//! - **Event-driven (default)**: one epoll reactor multiplexes every
//!   connection, ready audited sessions are drained through a single
//!   batched enclave transition per sweep, and handlers run on an
//!   lthread job pool (see [`crate::event`]).
//! - **Threaded** (the paper's model): a fixed pool of worker threads
//!   serves whole connections from an accept queue; each worker owns
//!   one async-ecall slot when the TLS mode is a LibSEAL instance with
//!   the §4.3 runtime.
//!
//! Routers plug the application in: static content for the TLS
//! micro-benchmarks (Fig. 7a, Tabs 2-4), the Git/ownCloud backends for
//! Fig. 5, or a reverse proxy (the paper's large-scale Git deployment,
//! §6.4).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use libseal_httpx::http::{parse_request, Request, Response};
use libseal_tlsx::ssl::ReadOutcome;

use crate::tlsadapter::{TlsMode, TlsSession};
use crate::Result;

/// Application logic behind the server.
pub trait Router: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;
}

/// Serves `GET /content/<n>` with an `n`-byte body (the paper's
/// variable content-size workload).
pub struct StaticContentRouter;

impl Router for StaticContentRouter {
    fn handle(&self, req: &Request) -> Response {
        if let Some(size) = req.path().strip_prefix("/content/") {
            if let Ok(n) = size.parse::<usize>() {
                return Response::new(200, vec![b'x'; n]);
            }
        }
        Response::new(404, b"not found".to_vec())
    }
}

/// Wraps a router with a fixed application-processing delay, modelling
/// backend work (the real git-http-backend, PHP engine, etc.) that the
/// TLS layer under study is not responsible for.
pub struct DelayRouter {
    /// Simulated processing time per request.
    pub delay: std::time::Duration,
    /// Burn CPU (true) or sleep (false). CPU-bound work models a
    /// saturated application core (the paper's Git backend); sleeping
    /// models waiting on external resources.
    pub busy: bool,
    /// The wrapped application.
    pub inner: Arc<dyn Router>,
}

impl Router for DelayRouter {
    fn handle(&self, req: &Request) -> Response {
        if !self.delay.is_zero() {
            if self.busy {
                libseal_sgxsim::cost::spin_for_nanos(self.delay.as_nanos() as u64);
            } else {
                std::thread::sleep(self.delay);
            }
        }
        self.inner.handle(req)
    }
}

/// Forwards every request to an upstream server over its own STLS
/// connection — the paper's large-scale Git deployment (§6.4): Apache
/// in reverse-proxy mode, linked against LibSEAL, logging all traffic
/// and forwarding to backend servers.
pub struct ReverseProxyRouter {
    upstream: std::net::SocketAddr,
    roots: Vec<libseal_crypto::ed25519::VerifyingKey>,
}

impl ReverseProxyRouter {
    /// Creates a reverse proxy towards `upstream`, trusting `roots`.
    pub fn new(
        upstream: std::net::SocketAddr,
        roots: Vec<libseal_crypto::ed25519::VerifyingKey>,
    ) -> Self {
        ReverseProxyRouter { upstream, roots }
    }
}

impl Router for ReverseProxyRouter {
    fn handle(&self, req: &Request) -> Response {
        // One upstream connection per request keeps the router
        // stateless; a production proxy would pool connections.
        let client = crate::client::HttpsClient::new(self.upstream, self.roots.clone());
        match client.request(req) {
            Ok(rsp) => rsp,
            Err(e) => Response::new(502, format!("upstream error: {e}").into_bytes()),
        }
    }
}

/// Router from a plain function.
pub struct FnRouter<F: Fn(&Request) -> Response + Send + Sync>(pub F);

impl<F: Fn(&Request) -> Response + Send + Sync> Router for FnRouter<F> {
    fn handle(&self, req: &Request) -> Response {
        self.0(req)
    }
}

/// Serves `GET /metrics` with a plain-text snapshot of the process-wide
/// telemetry registry (counters, gauges, histograms and recent span
/// traces from every instrumented crate), delegating everything else to
/// the wrapped router (404 when standalone).
pub struct MetricsRouter {
    inner: Option<Arc<dyn Router>>,
}

impl MetricsRouter {
    /// A standalone metrics endpoint: `/metrics` only, 404 elsewhere.
    pub fn new() -> Self {
        MetricsRouter { inner: None }
    }

    /// Wraps `inner`, adding the `/metrics` route in front of it.
    pub fn wrapping(inner: Arc<dyn Router>) -> Self {
        MetricsRouter { inner: Some(inner) }
    }
}

impl Default for MetricsRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for MetricsRouter {
    fn handle(&self, req: &Request) -> Response {
        if req.method == "GET" && req.path() == "/metrics" {
            let body = libseal_telemetry::global().render_text();
            return Response::new(200, body.into_bytes());
        }
        match &self.inner {
            Some(inner) => inner.handle(req),
            None => Response::new(404, b"not found".to_vec()),
        }
    }
}

/// Server-side request metrics: lifecycle counters, latency histogram
/// and bounded-cardinality per-route counters.
struct ApacheMetrics {
    requests: libseal_telemetry::Counter,
    request_ns: libseal_telemetry::Histogram,
    accept_errors: libseal_telemetry::Counter,
    malformed_requests: libseal_telemetry::Counter,
    /// Route label -> counter; capped at [`ROUTE_CARDINALITY_CAP`]
    /// labels, everything beyond lands on `other`.
    routes: plat::sync::Mutex<std::collections::HashMap<String, libseal_telemetry::Counter>>,
}

/// Most distinct per-route counters before falling back to `other` —
/// keeps a path-scanning client from minting unbounded metric names.
const ROUTE_CARDINALITY_CAP: usize = 32;

/// Longest route label kept verbatim — a single huge path segment must
/// not mint an arbitrarily long metric name.
const ROUTE_LABEL_MAX: usize = 48;

fn apache_metrics() -> &'static ApacheMetrics {
    static M: std::sync::OnceLock<ApacheMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ApacheMetrics {
        requests: libseal_telemetry::counter("services_apache_requests_total"),
        request_ns: libseal_telemetry::histogram("services_apache_request_ns"),
        accept_errors: libseal_telemetry::counter("services_apache_accept_errors_total"),
        malformed_requests: libseal_telemetry::counter("services_apache_malformed_requests_total"),
        routes: plat::sync::Mutex::new(std::collections::HashMap::new()),
    })
}

/// First path segment, sanitised to a metric-name-safe `[a-z0-9_]`
/// label and truncated to [`ROUTE_LABEL_MAX`] characters.
fn route_label(path: &str) -> String {
    let seg = path
        .trim_start_matches('/')
        .split(['/', '?'])
        .next()
        .unwrap_or("");
    if seg.is_empty() {
        return "root".to_string();
    }
    seg.chars()
        .take(ROUTE_LABEL_MAX)
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn bump_route(path: &str) {
    let label = route_label(path);
    let mut routes = apache_metrics().routes.lock();
    let counter = match routes.get(&label) {
        Some(c) => c.clone(),
        None => {
            let effective = if routes.len() >= ROUTE_CARDINALITY_CAP {
                "other".to_string()
            } else {
                label
            };
            routes
                .entry(effective.clone())
                .or_insert_with(|| {
                    libseal_telemetry::counter(&format!(
                        "services_apache_route_{effective}_requests_total"
                    ))
                })
                .clone()
        }
    };
    counter.inc();
}

/// Server configuration (builder).
///
/// ```
/// # use std::sync::Arc;
/// # use libseal_services::apache::{ApacheConfig, StaticContentRouter};
/// # fn demo(tls: libseal_services::TlsMode) -> ApacheConfig {
/// ApacheConfig::new(tls, Arc::new(StaticContentRouter))
///     .workers(8)
///     .event_loop(false) // paper-faithful thread-per-connection
/// # }
/// ```
pub struct ApacheConfig {
    pub(crate) tls: TlsMode,
    pub(crate) workers: usize,
    pub(crate) router: Arc<dyn Router>,
    pub(crate) event_loop: bool,
    pub(crate) idle_timeout: std::time::Duration,
}

impl ApacheConfig {
    /// A configuration with the default worker count (4), the
    /// event-driven core enabled and a 60 s idle-session timeout.
    pub fn new(tls: TlsMode, router: Arc<dyn Router>) -> ApacheConfig {
        ApacheConfig {
            tls,
            workers: 4,
            router,
            event_loop: true,
            idle_timeout: std::time::Duration::from_secs(60),
        }
    }

    /// Worker threads: connection workers in threaded mode, job-pool
    /// carriers (application threads `A` in §4.3 terms) in event mode.
    #[must_use]
    pub fn workers(mut self, n: usize) -> ApacheConfig {
        self.workers = n;
        self
    }

    /// Selects the event-driven core (default) or, with `false`, the
    /// paper's thread-per-connection serving model. Event mode falls
    /// back to threaded where readiness polling is unsupported.
    #[must_use]
    pub fn event_loop(mut self, on: bool) -> ApacheConfig {
        self.event_loop = on;
        self
    }

    /// Event mode only: idle connections are evicted after this long
    /// without traffic.
    #[must_use]
    pub fn idle_timeout(mut self, d: std::time::Duration) -> ApacheConfig {
        self.idle_timeout = d;
        self
    }
}

/// The Apache personality of the shared event loop: route via the
/// configured [`Router`], report into the same metrics as the
/// threaded path.
struct ApacheApp {
    router: Arc<dyn Router>,
    served: Arc<AtomicU64>,
}

impl crate::event::App for ApacheApp {
    type Conn = ();

    fn open_conn(&self) {}

    fn handle(&self, _conn: &mut (), req: &Request) -> Response {
        self.router.handle(req)
    }

    fn span_name(&self) -> &'static str {
        "apache_request"
    }

    fn on_request(&self, path: &str, started: std::time::Instant) {
        let m = apache_metrics();
        m.requests.inc();
        m.request_ns.record_duration(started.elapsed());
        bump_route(path);
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    fn on_malformed(&self) {
        apache_metrics().malformed_requests.inc();
    }

    fn on_accept_error(&self) {
        apache_metrics().accept_errors.inc();
    }
}

/// A running server instance.
pub struct ApacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
    /// Present in event mode: interrupts the parked reactor on stop.
    waker: Option<plat::reactor::Waker>,
}

impl ApacheServer {
    /// Starts the server on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn start(config: ApacheConfig) -> Result<ApacheServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));

        if config.event_loop && plat::reactor::supported() {
            let app = Arc::new(ApacheApp {
                router: Arc::clone(&config.router),
                served: Arc::clone(&requests_served),
            });
            let handle = crate::event::serve(
                listener,
                crate::event::EventConfig {
                    tls: config.tls.clone(),
                    workers: config.workers,
                    idle_timeout: config.idle_timeout,
                },
                app,
                Arc::clone(&shutdown),
            )?;
            return Ok(ApacheServer {
                addr,
                shutdown,
                handles: vec![handle.join],
                requests_served,
                waker: Some(handle.waker),
            });
        }

        let (tx, rx) = plat::channel::unbounded::<TcpStream>();
        let mut handles = Vec::new();

        // Accept loop.
        {
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name("apache-accept".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match plat::failpoint::check("services::accept")
                                .and_then(|()| listener.accept())
                            {
                                Ok((sock, _)) => {
                                    let _ = sock.set_nodelay(true);
                                    if tx.send(sock).is_err() {
                                        break;
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Err(_) => {
                                    // Transient accept failures
                                    // (ECONNABORTED on a reset
                                    // connection, EMFILE under fd
                                    // pressure, EINTR) must not kill
                                    // the listener for the server's
                                    // remaining lifetime: count, back
                                    // off briefly, retry. Shutdown is
                                    // the only exit.
                                    apache_metrics().accept_errors.inc();
                                    std::thread::sleep(std::time::Duration::from_millis(5));
                                }
                            }
                        }
                    })
                    .expect("spawn accept thread"),
            );
        }

        for worker in 0..config.workers.max(1) {
            let rx = rx.clone();
            let tls = config.tls.clone();
            let router = Arc::clone(&config.router);
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("apache-worker-{worker}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                                Ok(sock) => {
                                    let _ = serve_connection(
                                        sock,
                                        &tls,
                                        worker,
                                        router.as_ref(),
                                        &served,
                                    );
                                }
                                Err(plat::channel::RecvTimeoutError::Timeout) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        Ok(ApacheServer {
            addr,
            shutdown,
            handles,
            requests_served,
            waker: None,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// The process-wide telemetry registry the server reports into.
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Stops the server and joins its threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ApacheServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serves one connection until close/EOF.
fn serve_connection(
    mut sock: TcpStream,
    tls: &TlsMode,
    worker: usize,
    router: &dyn Router,
    served: &AtomicU64,
) -> Result<()> {
    sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    // A slow-reading client must not wedge the worker on a blocked
    // write either.
    sock.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut session = tls.open_session(worker)?;
    // Always release the (enclave) session state, whatever path exits
    // the connection loop.
    let result = serve_established(&mut session, &mut sock, router, served);
    session.close();
    let _ = flush(&mut session, &mut sock);
    result
}

fn serve_established(
    session: &mut TlsSession,
    sock: &mut TcpStream,
    router: &dyn Router,
    served: &AtomicU64,
) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];

    // Handshake.
    loop {
        flush(session, sock)?;
        if session.do_handshake()? {
            break;
        }
        flush(session, sock)?;
        // EINTR is a transient condition, not a handshake failure.
        let n = crate::event::read_retry(sock, &mut buf)?;
        if n == 0 {
            return Ok(());
        }
        session.provide_input(&buf[..n])?;
    }
    flush(session, sock)?;

    // Request loop (keep-alive).
    let mut plain = Vec::new();
    loop {
        // Accumulate one full request.
        let req = loop {
            match parse_request(&plain) {
                Ok((req, used)) => {
                    plain.drain(..used);
                    break req;
                }
                Err(libseal_httpx::ParseError::Incomplete) => {}
                Err(_) => {
                    // Provably not HTTP: more bytes can never fix it,
                    // so spinning in the read loop until the 30 s
                    // socket timeout would only tie up the worker.
                    // Answer 400 and close the connection.
                    apache_metrics().malformed_requests.inc();
                    let rsp = Response::new(400, b"bad request".to_vec());
                    session.ssl_write(&rsp.to_bytes())?;
                    flush(session, sock)?;
                    return Ok(());
                }
            }
            match session.ssl_read()? {
                ReadOutcome::Data(d) => plain.extend_from_slice(&d),
                ReadOutcome::WantRead => {
                    flush(session, sock)?;
                    // Retry EINTR; only real transport errors (and the
                    // 30 s socket timeout) end the connection.
                    let n = match crate::event::read_retry(sock, &mut buf) {
                        Ok(n) => n,
                        Err(_) => return Ok(()),
                    };
                    if n == 0 {
                        return Ok(());
                    }
                    session.provide_input(&buf[..n])?;
                }
                ReadOutcome::Closed => return Ok(()),
            }
        };
        let close = req
            .headers
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // Span over the full lifecycle: routing, the (possibly
        // enclave-terminated) write-back and the flush. Enclave
        // transitions charged on this worker thread while it is open
        // land in its boundary-cycle tally.
        let started = std::time::Instant::now();
        {
            let _span = libseal_telemetry::global()
                .span("apache_request", libseal_telemetry::Side::Untrusted);
            let response = router.handle(&req);
            session.ssl_write(&response.to_bytes())?;
            flush(session, sock)?;
        }
        let m = apache_metrics();
        m.requests.inc();
        m.request_ns.record_duration(started.elapsed());
        bump_route(req.path());
        served.fetch_add(1, Ordering::Relaxed);
        if close {
            return Ok(());
        }
    }
}

fn flush(session: &mut TlsSession, sock: &mut TcpStream) -> Result<()> {
    let out = session.take_output()?;
    if !out.is_empty() {
        sock.write_all(&out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_are_metric_name_safe() {
        assert_eq!(route_label("/"), "root");
        assert_eq!(route_label(""), "root");
        assert_eq!(route_label("/content/4096"), "content");
        assert_eq!(route_label("/Git-Upload.Pack"), "git_upload_pack");
        assert_eq!(route_label("/a%2F..%2Fetc?x=1"), "a_2f___2fetc");
        assert!(route_label("/weird$(){}//x")
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
    }

    #[test]
    fn route_labels_are_length_bounded() {
        let long = format!("/{}", "a".repeat(4096));
        assert_eq!(route_label(&long).len(), ROUTE_LABEL_MAX);
    }
}

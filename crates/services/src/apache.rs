//! An Apache-like web server terminating STLS.
//!
//! Two serving models, selected by [`ApacheConfig::event_loop`]:
//!
//! - **Event-driven (default)**: one epoll reactor multiplexes every
//!   connection, ready audited sessions are drained through a single
//!   batched enclave transition per sweep, and handlers run on an
//!   lthread job pool (see [`crate::event`]).
//! - **Threaded** (the paper's model): a fixed pool of worker threads
//!   serves whole connections from an accept queue; each worker owns
//!   one async-ecall slot when the TLS mode is a LibSEAL instance with
//!   the §4.3 runtime.
//!
//! Routers plug the application in: static content for the TLS
//! micro-benchmarks (Fig. 7a, Tabs 2-4), the Git/ownCloud backends for
//! Fig. 5, or a reverse proxy (the paper's large-scale Git deployment,
//! §6.4).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_httpx::http::{parse_request_limited, Limits, Request, Response};
use libseal_httpx::ParseError;
use libseal_tlsx::ssl::ReadOutcome;

use crate::event::PhaseTimeouts;
use crate::tlsadapter::{TlsMode, TlsSession};
use crate::Result;

/// Application logic behind the server.
pub trait Router: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;
}

/// Serves `GET /content/<n>` with an `n`-byte body (the paper's
/// variable content-size workload).
pub struct StaticContentRouter;

impl Router for StaticContentRouter {
    fn handle(&self, req: &Request) -> Response {
        if let Some(size) = req.path().strip_prefix("/content/") {
            if let Ok(n) = size.parse::<usize>() {
                return Response::new(200, vec![b'x'; n]);
            }
        }
        Response::new(404, b"not found".to_vec())
    }
}

/// Wraps a router with a fixed application-processing delay, modelling
/// backend work (the real git-http-backend, PHP engine, etc.) that the
/// TLS layer under study is not responsible for.
pub struct DelayRouter {
    /// Simulated processing time per request.
    pub delay: std::time::Duration,
    /// Burn CPU (true) or sleep (false). CPU-bound work models a
    /// saturated application core (the paper's Git backend); sleeping
    /// models waiting on external resources.
    pub busy: bool,
    /// The wrapped application.
    pub inner: Arc<dyn Router>,
}

impl Router for DelayRouter {
    fn handle(&self, req: &Request) -> Response {
        if !self.delay.is_zero() {
            if self.busy {
                libseal_sgxsim::cost::spin_for_nanos(self.delay.as_nanos() as u64);
            } else {
                std::thread::sleep(self.delay);
            }
        }
        self.inner.handle(req)
    }
}

/// Forwards every request to an upstream server over its own STLS
/// connection — the paper's large-scale Git deployment (§6.4): Apache
/// in reverse-proxy mode, linked against LibSEAL, logging all traffic
/// and forwarding to backend servers.
pub struct ReverseProxyRouter {
    origin: crate::client::HttpsClient,
}

impl ReverseProxyRouter {
    /// Creates a reverse proxy towards `upstream`, trusting `roots`
    /// for a certificate naming `upstream_subject`.
    pub fn new(
        upstream: std::net::SocketAddr,
        roots: Vec<libseal_crypto::ed25519::VerifyingKey>,
        upstream_subject: &str,
    ) -> Self {
        ReverseProxyRouter {
            origin: crate::client::HttpsClient::new(upstream, roots, upstream_subject),
        }
    }

    /// Requires the origin certificate to pass `policy` (RA-TLS).
    #[must_use]
    pub fn attestation(
        mut self,
        policy: std::sync::Arc<libseal_tlsx::attest::AttestationPolicy>,
    ) -> Self {
        self.origin = self.origin.attestation(policy);
        self
    }
}

impl Router for ReverseProxyRouter {
    fn handle(&self, req: &Request) -> Response {
        // One upstream connection per request keeps the router
        // stateless; a production proxy would pool connections.
        match self.origin.request(req) {
            Ok(rsp) => rsp,
            Err(e) => Response::new(502, format!("upstream error: {e}").into_bytes()),
        }
    }
}

/// Router from a plain function.
pub struct FnRouter<F: Fn(&Request) -> Response + Send + Sync>(pub F);

impl<F: Fn(&Request) -> Response + Send + Sync> Router for FnRouter<F> {
    fn handle(&self, req: &Request) -> Response {
        self.0(req)
    }
}

/// Serves `GET /metrics` with a plain-text snapshot of the process-wide
/// telemetry registry (counters, gauges, histograms and recent span
/// traces from every instrumented crate), delegating everything else to
/// the wrapped router (404 when standalone).
pub struct MetricsRouter {
    inner: Option<Arc<dyn Router>>,
}

impl MetricsRouter {
    /// A standalone metrics endpoint: `/metrics` only, 404 elsewhere.
    pub fn new() -> Self {
        MetricsRouter { inner: None }
    }

    /// Wraps `inner`, adding the `/metrics` route in front of it.
    pub fn wrapping(inner: Arc<dyn Router>) -> Self {
        MetricsRouter { inner: Some(inner) }
    }
}

impl Default for MetricsRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for MetricsRouter {
    fn handle(&self, req: &Request) -> Response {
        if req.method == "GET" && req.path() == "/metrics" {
            let body = libseal_telemetry::global().render_text();
            return Response::new(200, body.into_bytes());
        }
        match &self.inner {
            Some(inner) => inner.handle(req),
            None => Response::new(404, b"not found".to_vec()),
        }
    }
}

/// Server-side request metrics: lifecycle counters, latency histogram
/// and bounded-cardinality per-route counters.
struct ApacheMetrics {
    requests: libseal_telemetry::Counter,
    request_ns: libseal_telemetry::Histogram,
    accept_errors: libseal_telemetry::Counter,
    malformed_requests: libseal_telemetry::Counter,
    /// Route label -> counter; capped at [`ROUTE_CARDINALITY_CAP`]
    /// labels, everything beyond lands on `other`.
    routes: plat::sync::Mutex<std::collections::HashMap<String, libseal_telemetry::Counter>>,
}

/// Most distinct per-route counters before falling back to `other` —
/// keeps a path-scanning client from minting unbounded metric names.
const ROUTE_CARDINALITY_CAP: usize = 32;

/// Longest route label kept verbatim — a single huge path segment must
/// not mint an arbitrarily long metric name.
const ROUTE_LABEL_MAX: usize = 48;

fn apache_metrics() -> &'static ApacheMetrics {
    static M: std::sync::OnceLock<ApacheMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ApacheMetrics {
        requests: libseal_telemetry::counter("services_apache_requests_total"),
        request_ns: libseal_telemetry::histogram("services_apache_request_ns"),
        accept_errors: libseal_telemetry::counter("services_apache_accept_errors_total"),
        malformed_requests: libseal_telemetry::counter("services_apache_malformed_requests_total"),
        routes: plat::sync::Mutex::new(std::collections::HashMap::new()),
    })
}

/// First path segment, sanitised to a metric-name-safe `[a-z0-9_]`
/// label and truncated to [`ROUTE_LABEL_MAX`] characters.
fn route_label(path: &str) -> String {
    let seg = path
        .trim_start_matches('/')
        .split(['/', '?'])
        .next()
        .unwrap_or("");
    if seg.is_empty() {
        return "root".to_string();
    }
    seg.chars()
        .take(ROUTE_LABEL_MAX)
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn bump_route(path: &str) {
    let label = route_label(path);
    let mut routes = apache_metrics().routes.lock();
    let counter = match routes.get(&label) {
        Some(c) => c.clone(),
        None => {
            let effective = if routes.len() >= ROUTE_CARDINALITY_CAP {
                "other".to_string()
            } else {
                label
            };
            routes
                .entry(effective.clone())
                .or_insert_with(|| {
                    libseal_telemetry::counter(&format!(
                        "services_apache_route_{effective}_requests_total"
                    ))
                })
                .clone()
        }
    };
    counter.inc();
}

/// Server configuration (builder).
///
/// ```
/// # use std::sync::Arc;
/// # use libseal_services::apache::{ApacheConfig, StaticContentRouter};
/// # fn demo(tls: libseal_services::TlsMode) -> ApacheConfig {
/// ApacheConfig::new(tls, Arc::new(StaticContentRouter))
///     .workers(8)
///     .event_loop(false) // paper-faithful thread-per-connection
/// # }
/// ```
pub struct ApacheConfig {
    pub(crate) tls: TlsMode,
    pub(crate) workers: usize,
    pub(crate) router: Arc<dyn Router>,
    pub(crate) event_loop: bool,
    pub(crate) idle_timeout: Duration,
    pub(crate) timeouts: PhaseTimeouts,
    pub(crate) max_connections: usize,
    pub(crate) drain_timeout: Duration,
    pub(crate) limits: Limits,
}

impl ApacheConfig {
    /// A configuration with the default worker count (4), the
    /// event-driven core enabled, a 60 s idle-session timeout, no
    /// connection cap, default phase deadlines and a 5 s drain bound.
    pub fn new(tls: TlsMode, router: Arc<dyn Router>) -> ApacheConfig {
        ApacheConfig {
            tls,
            workers: 4,
            router,
            event_loop: true,
            idle_timeout: Duration::from_secs(60),
            timeouts: PhaseTimeouts::default(),
            max_connections: usize::MAX,
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }

    /// Worker threads: connection workers in threaded mode, job-pool
    /// carriers (application threads `A` in §4.3 terms) in event mode.
    #[must_use]
    pub fn workers(mut self, n: usize) -> ApacheConfig {
        self.workers = n;
        self
    }

    /// Selects the event-driven core (default) or, with `false`, the
    /// paper's thread-per-connection serving model. Event mode falls
    /// back to threaded where readiness polling is unsupported.
    #[must_use]
    pub fn event_loop(mut self, on: bool) -> ApacheConfig {
        self.event_loop = on;
        self
    }

    /// Event mode only: idle connections are evicted after this long
    /// without traffic.
    #[must_use]
    pub fn idle_timeout(mut self, d: Duration) -> ApacheConfig {
        self.idle_timeout = d;
        self
    }

    /// Most concurrent connections; accepts beyond the cap are shed
    /// (refused fast) instead of queued. Default: unlimited.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> ApacheConfig {
        self.max_connections = n.max(1);
        self
    }

    /// Deadline for a client to finish its TLS handshake (default
    /// 10 s); expiry evicts the connection.
    #[must_use]
    pub fn handshake_timeout(mut self, d: Duration) -> ApacheConfig {
        self.timeouts.handshake = d;
        self
    }

    /// Deadline to finish a request's header section once its first
    /// byte arrived (default 10 s). The deadline is per phase, not
    /// per byte: trickling headers does not extend it.
    #[must_use]
    pub fn header_timeout(mut self, d: Duration) -> ApacheConfig {
        self.timeouts.header = d;
        self
    }

    /// Deadline to finish a request body once the head completed
    /// (default 30 s).
    #[must_use]
    pub fn body_timeout(mut self, d: Duration) -> ApacheConfig {
        self.timeouts.body = d;
        self
    }

    /// Deadline for a peer to drain a queued response (default 30 s);
    /// a stuck reader is evicted, not held forever.
    #[must_use]
    pub fn write_timeout(mut self, d: Duration) -> ApacheConfig {
        self.timeouts.write = d;
        self
    }

    /// Bound on the graceful drain in [`ApacheServer::stop`]: how
    /// long in-flight requests get to deliver before teardown cuts
    /// stragglers off (default 5 s).
    #[must_use]
    pub fn drain_timeout(mut self, d: Duration) -> ApacheConfig {
        self.drain_timeout = d;
        self
    }

    /// HTTP parser limits (head bytes, header count, body bytes);
    /// breaching them answers 431/413 and closes the connection.
    #[must_use]
    pub fn http_limits(mut self, limits: Limits) -> ApacheConfig {
        self.limits = limits;
        self
    }
}

/// The Apache personality of the shared event loop: route via the
/// configured [`Router`], report into the same metrics as the
/// threaded path.
struct ApacheApp {
    router: Arc<dyn Router>,
    served: Arc<AtomicU64>,
}

impl crate::event::App for ApacheApp {
    type Conn = ();

    fn open_conn(&self) {}

    fn handle(&self, _conn: &mut (), req: &Request) -> Response {
        self.router.handle(req)
    }

    fn span_name(&self) -> &'static str {
        "apache_request"
    }

    fn on_request(&self, path: &str, started: std::time::Instant) {
        let m = apache_metrics();
        m.requests.inc();
        m.request_ns.record_duration(started.elapsed());
        bump_route(path);
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    fn on_malformed(&self) {
        apache_metrics().malformed_requests.inc();
    }

    fn on_accept_error(&self) {
        apache_metrics().accept_errors.inc();
    }
}

/// A running server instance.
pub struct ApacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Graceful-drain request ([`ApacheServer::stop`]): stop
    /// accepting, deliver in-flight responses, then exit.
    draining: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
    /// Present in event mode: interrupts the parked reactor on stop.
    waker: Option<plat::reactor::Waker>,
    /// Kept to seal pending audit batches to durable after drain.
    tls: TlsMode,
}

impl ApacheServer {
    /// Starts the server on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn start(config: ApacheConfig) -> Result<ApacheServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));

        if config.event_loop && plat::reactor::supported() {
            let app = Arc::new(ApacheApp {
                router: Arc::clone(&config.router),
                served: Arc::clone(&requests_served),
            });
            let handle = crate::event::serve(
                listener,
                crate::event::EventConfig {
                    tls: config.tls.clone(),
                    workers: config.workers,
                    idle_timeout: config.idle_timeout,
                    timeouts: config.timeouts,
                    max_connections: config.max_connections,
                    drain_timeout: config.drain_timeout,
                    limits: config.limits,
                },
                app,
                Arc::clone(&shutdown),
                Arc::clone(&draining),
            )?;
            return Ok(ApacheServer {
                addr,
                shutdown,
                draining,
                handles: vec![handle.join],
                requests_served,
                waker: Some(handle.waker),
                tls: config.tls,
            });
        }

        let (tx, rx) = plat::channel::unbounded::<TcpStream>();
        let mut handles = Vec::new();
        // Live connections (queued + being served): the threaded
        // cap's admission counter.
        let live = Arc::new(AtomicUsize::new(0));

        // Accept loop.
        {
            let shutdown = Arc::clone(&shutdown);
            let draining = Arc::clone(&draining);
            let live = Arc::clone(&live);
            let cap = config.max_connections;
            handles.push(
                std::thread::Builder::new()
                    .name("apache-accept".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) && !draining.load(Ordering::Acquire)
                        {
                            match plat::failpoint::check("services::accept")
                                .and_then(|()| listener.accept())
                            {
                                Ok((sock, _)) => {
                                    if live.load(Ordering::Acquire) >= cap {
                                        // Shed: refuse fast instead of
                                        // queueing work no worker will
                                        // reach in time.
                                        libseal_telemetry::counter(
                                            "services_threaded_sheds_total",
                                        )
                                        .inc();
                                        drop(sock);
                                        continue;
                                    }
                                    let _ = sock.set_nodelay(true);
                                    live.fetch_add(1, Ordering::AcqRel);
                                    if tx.send(sock).is_err() {
                                        break;
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Err(_) => {
                                    // Transient accept failures
                                    // (ECONNABORTED on a reset
                                    // connection, EMFILE under fd
                                    // pressure, EINTR) must not kill
                                    // the listener for the server's
                                    // remaining lifetime: count, back
                                    // off briefly, retry. Shutdown is
                                    // the only exit.
                                    apache_metrics().accept_errors.inc();
                                    std::thread::sleep(std::time::Duration::from_millis(5));
                                }
                            }
                        }
                    })
                    .expect("spawn accept thread"),
            );
        }

        // Shared connection counter: each accepted connection gets a
        // stable id the audit plane hashes for shard routing.
        let conn_seq = Arc::new(AtomicU64::new(1));
        for worker in 0..config.workers.max(1) {
            let rx = rx.clone();
            let tls = config.tls.clone();
            let router = Arc::clone(&config.router);
            let shutdown = Arc::clone(&shutdown);
            let draining = Arc::clone(&draining);
            let served = Arc::clone(&requests_served);
            let live = Arc::clone(&live);
            let conn_seq = Arc::clone(&conn_seq);
            let timeouts = config.timeouts;
            let limits = config.limits;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("apache-worker-{worker}"))
                    .spawn(move || {
                        let halt =
                            || shutdown.load(Ordering::Acquire) || draining.load(Ordering::Acquire);
                        loop {
                            if halt() {
                                break;
                            }
                            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                                Ok(sock) => {
                                    let conn_id = conn_seq.fetch_add(1, Ordering::Relaxed);
                                    let _ = serve_connection(
                                        sock,
                                        &tls,
                                        worker,
                                        conn_id,
                                        router.as_ref(),
                                        &served,
                                        &halt,
                                        &timeouts,
                                        &limits,
                                    );
                                    live.fetch_sub(1, Ordering::AcqRel);
                                }
                                Err(plat::channel::RecvTimeoutError::Timeout) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        Ok(ApacheServer {
            addr,
            shutdown,
            draining,
            handles,
            requests_served,
            waker: None,
            tls: config.tls,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// The process-wide telemetry registry the server reports into.
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Stops the server and joins its threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Gracefully drains the server: stop accepting, deliver in-flight
    /// responses (bounded by the configured drain deadline in event
    /// mode), then seal pending audit batches to durable storage.
    pub fn drain(mut self) {
        self.draining.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Every delivered response already awaited group-commit
        // durability on its write path; this catches batches still
        // staged when the last worker exited.
        if let TlsMode::LibSeal(ls) = &self.tls {
            let _ = ls.drain(0);
        }
    }
}

impl Drop for ApacheServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serves one connection until close/EOF.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut sock: TcpStream,
    tls: &TlsMode,
    worker: usize,
    conn_id: u64,
    router: &dyn Router,
    served: &AtomicU64,
    halt: &dyn Fn() -> bool,
    timeouts: &PhaseTimeouts,
    limits: &Limits,
) -> Result<()> {
    // Short socket-level tick so the blocking read loop can observe
    // halt/drain requests and phase deadlines between reads.
    sock.set_read_timeout(Some(crate::event::THREAD_READ_TICK))?;
    // A slow-reading client must not wedge the worker on a blocked
    // write either.
    sock.set_write_timeout(Some(timeouts.write))?;
    let mut session = tls.open_session(worker, conn_id)?;
    // Always release the (enclave) session state, whatever path exits
    // the connection loop.
    let result = serve_established(&mut session, &mut sock, router, served, halt, timeouts, limits);
    session.close();
    let _ = flush(&mut session, &mut sock);
    result
}

fn serve_established(
    session: &mut TlsSession,
    sock: &mut TcpStream,
    router: &dyn Router,
    served: &AtomicU64,
    halt: &dyn Fn() -> bool,
    timeouts: &PhaseTimeouts,
    limits: &Limits,
) -> Result<()> {
    let mut buf = [0u8; 16 * 1024];

    // Handshake, bounded: a client that connects and trickles (or
    // never sends) handshake bytes is evicted at the deadline instead
    // of pinning the worker.
    let hs_deadline = Instant::now() + timeouts.handshake;
    loop {
        flush(session, sock)?;
        if session.do_handshake()? {
            break;
        }
        flush(session, sock)?;
        let n = match crate::event::read_deadline(sock, &mut buf, hs_deadline, halt) {
            Ok(n) => n,
            Err(_) => {
                libseal_telemetry::counter("services_threaded_handshake_timeouts_total").inc();
                return Ok(());
            }
        };
        if n == 0 {
            return Ok(());
        }
        session.provide_input(&buf[..n])?;
    }
    flush(session, sock)?;

    // Request loop (keep-alive).
    let mut plain = Vec::new();
    loop {
        // Accumulate one full request. The whole head must land within
        // the header deadline and the whole body within the body
        // deadline: the deadlines are per phase, not per read, so
        // trickling bytes does not extend them (slowloris).
        let mut deadline = Instant::now() + timeouts.header;
        let mut in_body = false;
        let req = loop {
            match parse_request_limited(&plain, limits) {
                Ok((req, used)) => {
                    plain.drain(..used);
                    break req;
                }
                Err(ParseError::Incomplete) => {
                    if !in_body && libseal_httpx::http::head_complete(&plain) {
                        in_body = true;
                        deadline = Instant::now() + timeouts.body;
                    }
                }
                Err(e) => {
                    // Provably unservable: a malformed line (400), an
                    // oversized head (431) or an oversized declared
                    // body (413). More bytes can never fix it, so
                    // answer with the typed status and close.
                    let status = e.close_status();
                    if status == 400 {
                        apache_metrics().malformed_requests.inc();
                    } else {
                        libseal_telemetry::counter("services_threaded_limit_rejections_total")
                            .inc();
                    }
                    let rsp = Response::new(status, b"request rejected".to_vec());
                    session.ssl_write(&rsp.to_bytes())?;
                    flush(session, sock)?;
                    return Ok(());
                }
            }
            match session.ssl_read()? {
                ReadOutcome::Data(d) => plain.extend_from_slice(&d),
                ReadOutcome::WantRead => {
                    flush(session, sock)?;
                    // Retry EINTR; deadline expiry, halt and real
                    // transport errors end the connection.
                    let n = match crate::event::read_deadline(sock, &mut buf, deadline, halt) {
                        Ok(n) => n,
                        Err(_) => {
                            // Only count evictions of a started
                            // request; an idle keep-alive expiring at
                            // the header deadline is routine.
                            if !plain.is_empty() {
                                libseal_telemetry::counter(if in_body {
                                    "services_threaded_body_timeouts_total"
                                } else {
                                    "services_threaded_header_timeouts_total"
                                })
                                .inc();
                            }
                            return Ok(());
                        }
                    };
                    if n == 0 {
                        return Ok(());
                    }
                    session.provide_input(&buf[..n])?;
                }
                ReadOutcome::Closed => return Ok(()),
            }
        };
        let close = req
            .headers
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // Span over the full lifecycle: routing, the (possibly
        // enclave-terminated) write-back and the flush. Enclave
        // transitions charged on this worker thread while it is open
        // land in its boundary-cycle tally.
        let started = std::time::Instant::now();
        {
            let _span = libseal_telemetry::global()
                .span("apache_request", libseal_telemetry::Side::Untrusted);
            let response = router.handle(&req);
            session.ssl_write(&response.to_bytes())?;
            flush(session, sock)?;
        }
        let m = apache_metrics();
        m.requests.inc();
        m.request_ns.record_duration(started.elapsed());
        bump_route(req.path());
        served.fetch_add(1, Ordering::Relaxed);
        // A drain request lands between requests: the response above
        // was delivered (and is durable), so closing here loses
        // nothing.
        if close || halt() {
            return Ok(());
        }
    }
}

fn flush(session: &mut TlsSession, sock: &mut TcpStream) -> Result<()> {
    let out = session.take_output()?;
    if !out.is_empty() {
        sock.write_all(&out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_are_metric_name_safe() {
        assert_eq!(route_label("/"), "root");
        assert_eq!(route_label(""), "root");
        assert_eq!(route_label("/content/4096"), "content");
        assert_eq!(route_label("/Git-Upload.Pack"), "git_upload_pack");
        assert_eq!(route_label("/a%2F..%2Fetc?x=1"), "a_2f___2fetc");
        assert!(route_label("/weird$(){}//x")
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
    }

    #[test]
    fn route_labels_are_length_bounded() {
        let long = format!("/{}", "a".repeat(4096));
        assert_eq!(route_label(&long).len(), ROUTE_LABEL_MAX);
    }
}

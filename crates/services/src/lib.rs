#![warn(missing_docs)]
//! Simulated Internet services and servers for evaluating LibSEAL.
//!
//! The paper evaluates LibSEAL with Apache (serving Git and ownCloud)
//! and Squid (proxying Dropbox). This crate provides from-scratch
//! equivalents that terminate STLS either natively or through a
//! [`libseal::LibSeal`] instance:
//!
//! - [`apache::ApacheServer`] — a web server with pluggable routers
//!   (static content, Git, ownCloud, reverse proxy);
//! - [`squid::SquidProxy`] — a TLS-terminating forward proxy with two
//!   TLS legs (client↔proxy, proxy↔origin);
//!
//! Both servers default to an event-driven core (an epoll reactor
//! multiplexing all connections, handlers on an lthread job pool, and
//! ready audited sessions drained through one batched enclave
//! transition per sweep); `event_loop(false)` on their config builders
//! selects the paper-faithful thread-per-connection mode instead.
//! The remaining modules:
//! - [`git`] — an in-memory Git backend speaking the smart-HTTP-like
//!   dialect the Git SSM parses, with teleport/rollback/hide-ref
//!   attack injection and a synthetic commit-history generator;
//! - [`owncloud`] — a collaborative-document sync service with
//!   lost-edit/tamper/stale-snapshot injection;
//! - [`dropbox`] — a file-metadata service speaking
//!   `commit_batch`/`list`, with blocklist-corruption/hidden-file/
//!   phantom-file injection and a simulated WAN latency floor;
//! - [`client`] — STLS HTTP clients and a closed-loop load generator
//!   measuring throughput and latency percentiles.

pub mod apache;
pub mod client;
pub mod dropbox;
pub(crate) mod event;
pub mod git;
pub mod owncloud;
pub mod squid;
pub mod tlsadapter;

pub use apache::{ApacheServer, MetricsRouter, Router, StaticContentRouter};
pub use client::{HttpsClient, LoadGenerator, LoadStats};
pub use squid::SquidProxy;
pub use tlsadapter::TlsMode;

/// The shared lifecycle surface of the simulated servers, so bench
/// binaries, tests and the chaos/hostile harnesses drive
/// [`ApacheServer`] and [`SquidProxy`] through one set of driver
/// helpers instead of near-identical per-service code.
pub trait Service: Sized + Send {
    /// Configuration consumed by [`Service::start`].
    type Config;

    /// Binds an ephemeral local port and starts serving.
    ///
    /// # Errors
    ///
    /// Bind or enclave provisioning failures.
    fn start(config: Self::Config) -> Result<Self>;

    /// The bound address.
    fn local_addr(&self) -> std::net::SocketAddr;

    /// Requests completed so far (served or proxied).
    fn served(&self) -> u64;

    /// The telemetry registry the service reports into.
    fn telemetry(&self) -> &'static libseal_telemetry::Registry;

    /// Graceful drain: stop accepting, let in-flight requests finish
    /// within the configured deadline, quiesce the audit plane, stop.
    fn drain(self);

    /// Immediate stop.
    fn shutdown(self);
}

impl Service for ApacheServer {
    type Config = apache::ApacheConfig;

    fn start(config: apache::ApacheConfig) -> Result<ApacheServer> {
        ApacheServer::start(config)
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        self.addr()
    }

    fn served(&self) -> u64 {
        self.requests_served()
    }

    fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        ApacheServer::telemetry(self)
    }

    fn drain(self) {
        ApacheServer::drain(self);
    }

    fn shutdown(self) {
        self.stop();
    }
}

impl Service for SquidProxy {
    type Config = squid::SquidConfig;

    fn start(config: squid::SquidConfig) -> Result<SquidProxy> {
        SquidProxy::start(config)
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        self.addr()
    }

    fn served(&self) -> u64 {
        self.requests_proxied()
    }

    fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        SquidProxy::telemetry(self)
    }

    fn drain(self) {
        SquidProxy::drain(self);
    }

    fn shutdown(self) {
        self.stop();
    }
}

/// Errors from the service layer.
#[derive(Debug)]
pub enum ServiceError {
    /// Transport failure.
    Io(std::io::Error),
    /// TLS failure.
    Tls(libseal_tlsx::TlsError),
    /// LibSEAL failure.
    LibSeal(libseal::LibSealError),
    /// Protocol failure.
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Tls(e) => write!(f, "tls: {e}"),
            ServiceError::LibSeal(e) => write!(f, "libseal: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Tls(e) => Some(e),
            ServiceError::LibSeal(e) => Some(e),
            ServiceError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<libseal_tlsx::TlsError> for ServiceError {
    fn from(e: libseal_tlsx::TlsError) -> Self {
        ServiceError::Tls(e)
    }
}

impl From<libseal::LibSealError> for ServiceError {
    fn from(e: libseal::LibSealError) -> Self {
        ServiceError::LibSeal(e)
    }
}

/// Convenience alias for fallible service operations.
pub type Result<T> = std::result::Result<T, ServiceError>;

//! STLS HTTP clients and a closed-loop load generator.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_crypto::ed25519::VerifyingKey;
use libseal_crypto::SystemRng;
use libseal_httpx::http::{parse_response, Request, Response};
use libseal_telemetry::{Counter, Histogram};
use libseal_tlsx::attest::AttestationPolicy;
use libseal_tlsx::ssl::{Role, SslConfig};
use libseal_tlsx::stream::SslStream;
use libseal_tlsx::TlsError;

use crate::{Result, ServiceError};

struct ClientMetrics {
    requests: Counter,
    errors: Counter,
    sheds: Counter,
    request_ns: Histogram,
}

fn client_metrics() -> &'static ClientMetrics {
    static M: std::sync::OnceLock<ClientMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ClientMetrics {
        requests: libseal_telemetry::counter("services_client_requests_total"),
        errors: libseal_telemetry::counter("services_client_errors_total"),
        sheds: libseal_telemetry::counter("services_client_sheds_total"),
        request_ns: libseal_telemetry::histogram("services_client_request_ns"),
    })
}

/// A client issuing HTTPS requests over STLS.
#[derive(Clone)]
pub struct HttpsClient {
    addr: SocketAddr,
    ca_roots: Vec<VerifyingKey>,
    expected_subject: String,
    attestation: Option<Arc<AttestationPolicy>>,
}

impl HttpsClient {
    /// Creates a client for `addr` trusting `ca_roots` and requiring
    /// the server certificate to name `expected_subject`. Without the
    /// pin, ANY certificate under the CA passes — a valid cert for a
    /// different host would be accepted.
    pub fn new(addr: SocketAddr, ca_roots: Vec<VerifyingKey>, expected_subject: &str) -> Self {
        HttpsClient {
            addr,
            ca_roots,
            expected_subject: expected_subject.to_string(),
            attestation: None,
        }
    }

    /// Additionally requires the server certificate to pass `policy`
    /// (RA-TLS): the embedded enclave quote must verify and commit to
    /// the certificate key before the handshake completes.
    #[must_use]
    pub fn attestation(mut self, policy: Arc<AttestationPolicy>) -> Self {
        self.attestation = Some(policy);
        self
    }

    /// Drops any attestation requirement (CA + subject checks only).
    #[must_use]
    pub fn no_attestation(mut self) -> Self {
        self.attestation = None;
        self
    }

    /// One-shot request on a fresh connection (the paper's
    /// non-persistent worst case: every request pays a handshake).
    ///
    /// # Errors
    ///
    /// Connection, TLS, or protocol failures.
    pub fn request(&self, req: &Request) -> Result<Response> {
        let mut conn = self.connect()?;
        let rsp = conn.request(req)?;
        conn.close();
        Ok(rsp)
    }

    /// Opens a persistent connection.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(&self) -> Result<PersistentConnection> {
        let sock = TcpStream::connect(self.addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_secs(30)))?;
        let cfg = Arc::new(SslConfig {
            role: Role::Client,
            cert: None,
            key: None,
            ca_roots: self.ca_roots.clone(),
            verify_peer: true,
            expected_subject: Some(self.expected_subject.clone()),
            attestation: self.attestation.clone(),
        });
        let mut entropy = [0u8; 64];
        SystemRng::new().fill(&mut entropy);
        let tls = SslStream::handshake(cfg, entropy, sock)?;
        Ok(PersistentConnection { tls })
    }
}

/// A persistent (keep-alive) client connection.
pub struct PersistentConnection {
    tls: SslStream<TcpStream>,
}

impl PersistentConnection {
    /// Sends `req` and reads one full response.
    ///
    /// # Errors
    ///
    /// TLS or protocol failures.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.tls.write_all(&req.to_bytes())?;
        let mut buf = Vec::new();
        loop {
            match parse_response(&buf) {
                Ok((rsp, _)) => return Ok(rsp),
                Err(libseal_httpx::ParseError::Incomplete) => {}
                Err(e) => return Err(ServiceError::Protocol(e.to_string())),
            }
            match self.tls.read_some() {
                Ok(d) => buf.extend_from_slice(&d),
                Err(TlsError::Closed) => {
                    return Err(ServiceError::Protocol("closed mid-response".into()))
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends close_notify.
    pub fn close(&mut self) {
        self.tls.close();
    }
}

/// Latency and throughput statistics from one load run.
///
/// Quantiles come from a log-linear [`Histogram`] snapshot, so they
/// are upper bounds within 1/16 relative error of the true sample.
#[derive(Clone, Debug)]
pub struct LoadStats {
    /// Total completed requests.
    pub requests: u64,
    /// Errors observed.
    pub errors: u64,
    /// Load-shed refusals observed (connection refused/reset by an
    /// overloaded server, or an explicit 503). Counted separately from
    /// `errors`: shedding is the server working as designed, not a
    /// fault.
    pub shed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th percentile latency.
    pub p95_latency: Duration,
    /// 99th percentile latency.
    pub p99_latency: Duration,
    /// Connection ids established during the run, one per TLS
    /// connection: `client_index << 32 | per-client connection
    /// sequence`. Shard-routing tests hash these the way a server
    /// derives session affinity to assert the consistent-hash
    /// distribution.
    pub conn_ids: Vec<u64>,
}

impl LoadStats {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Closed-loop load generator: `clients` threads each issue requests
/// back-to-back for `duration`.
pub struct LoadGenerator {
    /// Concurrent client threads.
    pub clients: usize,
    /// Run duration.
    pub duration: Duration,
    /// Reuse connections (persistent) or reconnect per request.
    pub persistent: bool,
    /// Base pause after a load-shed refusal before reconnecting, with
    /// deterministic per-thread jitter (so a shed fleet does not
    /// stampede back in lockstep). `None` retries immediately.
    pub shed_backoff: Option<Duration>,
}

impl Default for LoadGenerator {
    fn default() -> LoadGenerator {
        LoadGenerator {
            clients: 1,
            duration: Duration::from_secs(1),
            persistent: true,
            shed_backoff: None,
        }
    }
}

/// How one request attempt ended.
enum Attempt {
    Ok(Duration),
    Shed,
    Err,
}

/// Distinguishes a deliberate refusal by an overloaded server from a
/// genuine fault. Refused/reset/aborted transport errors and explicit
/// 503 responses are sheds.
fn classify(result: &Result<Response>, latency: Duration) -> Attempt {
    match result {
        Ok(rsp) if rsp.status == 503 => Attempt::Shed,
        Ok(_) => Attempt::Ok(latency),
        Err(ServiceError::Io(e)) => match e.kind() {
            std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => Attempt::Shed,
            _ => Attempt::Err,
        },
        Err(ServiceError::Tls(TlsError::Closed)) => Attempt::Shed,
        Err(ServiceError::Tls(TlsError::Io(m)))
            if m.contains("refused") || m.contains("reset") || m.contains("aborted") =>
        {
            Attempt::Shed
        }
        Err(_) => Attempt::Err,
    }
}

impl LoadGenerator {
    /// The process-wide telemetry registry the generator reports into
    /// (`services_client_*` metrics).
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Runs the load; `make_request` builds the i-th request of a
    /// client thread.
    pub fn run(
        &self,
        client: &HttpsClient,
        make_request: impl Fn(usize, u64) -> Request + Send + Sync,
    ) -> LoadStats {
        let stop = Arc::new(AtomicBool::new(false));
        // Standalone per-run instruments: the global
        // `services_client_*` metrics accumulate across runs, these
        // scope LoadStats to this run only.
        let run_hist = Histogram::new();
        let run_errors = Counter::new();
        let run_sheds = Counter::new();
        let conn_ids = std::sync::Mutex::new(Vec::new());
        let conn_ids = &conn_ids;
        let make_request = &make_request;
        let start = Instant::now();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..self.clients {
                let stop = Arc::clone(&stop);
                let run_hist = run_hist.clone();
                let run_errors = run_errors.clone();
                let run_sheds = run_sheds.clone();
                handles.push(scope.spawn(move || {
                    let mut i = 0u64;
                    // Per-client connection sequence; a new id is
                    // recorded for every connection actually
                    // established (initial, reconnect, or one per
                    // request when non-persistent).
                    let mut conn_seq = 0u64;
                    let note_conn = |seq: &mut u64| {
                        let id = ((c as u64) << 32) | *seq;
                        *seq += 1;
                        conn_ids.lock().expect("conn id lock").push(id);
                    };
                    let mut conn = if self.persistent {
                        let conn = client.connect().ok();
                        if conn.is_some() {
                            note_conn(&mut conn_seq);
                        }
                        conn
                    } else {
                        None
                    };
                    while !stop.load(Ordering::Acquire) {
                        let req = make_request(c, i);
                        let t0 = Instant::now();
                        let result = if self.persistent {
                            match conn.as_mut() {
                                Some(pc) => {
                                    let r = pc.request(&req);
                                    if r.is_err() {
                                        conn = None;
                                    }
                                    r
                                }
                                None => match client.connect() {
                                    Ok(mut pc) => {
                                        note_conn(&mut conn_seq);
                                        let r = pc.request(&req);
                                        if r.is_ok() {
                                            conn = Some(pc);
                                        }
                                        r
                                    }
                                    Err(e) => Err(e),
                                },
                            }
                        } else {
                            let r = client.request(&req);
                            if r.is_ok() {
                                note_conn(&mut conn_seq);
                            }
                            r
                        };
                        match classify(&result, t0.elapsed()) {
                            Attempt::Ok(lat) => {
                                run_hist.record_duration(lat);
                                client_metrics().request_ns.record_duration(lat);
                                client_metrics().requests.inc();
                            }
                            Attempt::Shed => {
                                run_sheds.inc();
                                client_metrics().sheds.inc();
                                if let Some(base) = self.shed_backoff {
                                    // Deterministic jitter (thread id
                                    // and attempt index), 100-200 % of
                                    // the base: spreads the fleet's
                                    // retries without a shared RNG.
                                    let spread = (c as u64)
                                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                        .wrapping_add(i)
                                        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                                        >> 32;
                                    let jitter =
                                        base.mul_f64((spread % 1000) as f64 / 1000.0);
                                    std::thread::sleep(base + jitter);
                                }
                            }
                            Attempt::Err => {
                                run_errors.inc();
                                client_metrics().errors.inc();
                            }
                        }
                        i += 1;
                    }
                    if let Some(mut pc) = conn {
                        pc.close();
                    }
                }));
            }
            // Timer thread.
            let duration = self.duration;
            let stop2 = Arc::clone(&stop);
            scope.spawn(move || {
                std::thread::sleep(duration);
                stop2.store(true, Ordering::Release);
            });
            for h in handles {
                let _ = h.join();
            }
        });

        let elapsed = start.elapsed();
        let snap = run_hist.snapshot();
        let conn_ids = conn_ids.lock().expect("conn id lock").split_off(0);
        LoadStats {
            requests: snap.count(),
            errors: run_errors.get(),
            shed: run_sheds.get(),
            elapsed,
            mean_latency: snap.mean_duration(),
            p50_latency: snap.percentile_duration(0.5),
            p95_latency: snap.percentile_duration(0.95),
            p99_latency: snap.percentile_duration(0.99),
            conn_ids,
        }
    }
}

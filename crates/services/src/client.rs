//! STLS HTTP clients and a closed-loop load generator.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_crypto::ed25519::VerifyingKey;
use libseal_crypto::SystemRng;
use libseal_httpx::http::{parse_response, Request, Response};
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::stream::SslStream;
use libseal_tlsx::TlsError;

use crate::{Result, ServiceError};

/// A client issuing HTTPS requests over STLS.
pub struct HttpsClient {
    addr: SocketAddr,
    ca_roots: Vec<VerifyingKey>,
}

impl HttpsClient {
    /// Creates a client for `addr` trusting `ca_roots`.
    pub fn new(addr: SocketAddr, ca_roots: Vec<VerifyingKey>) -> Self {
        HttpsClient { addr, ca_roots }
    }

    /// One-shot request on a fresh connection (the paper's
    /// non-persistent worst case: every request pays a handshake).
    ///
    /// # Errors
    ///
    /// Connection, TLS, or protocol failures.
    pub fn request(&self, req: &Request) -> Result<Response> {
        let mut conn = self.connect()?;
        let rsp = conn.request(req)?;
        conn.close();
        Ok(rsp)
    }

    /// Opens a persistent connection.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(&self) -> Result<PersistentConnection> {
        let sock = TcpStream::connect(self.addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_secs(30)))?;
        let cfg = SslConfig::client(self.ca_roots.clone());
        let mut entropy = [0u8; 64];
        SystemRng::new().fill(&mut entropy);
        let tls = SslStream::handshake(cfg, entropy, sock)?;
        Ok(PersistentConnection { tls })
    }
}

/// A persistent (keep-alive) client connection.
pub struct PersistentConnection {
    tls: SslStream<TcpStream>,
}

impl PersistentConnection {
    /// Sends `req` and reads one full response.
    ///
    /// # Errors
    ///
    /// TLS or protocol failures.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.tls.write_all(&req.to_bytes())?;
        let mut buf = Vec::new();
        loop {
            match parse_response(&buf) {
                Ok((rsp, _)) => return Ok(rsp),
                Err(libseal_httpx::ParseError::Incomplete) => {}
                Err(e) => return Err(ServiceError::Protocol(e.to_string())),
            }
            match self.tls.read_some() {
                Ok(d) => buf.extend_from_slice(&d),
                Err(TlsError::Closed) => {
                    return Err(ServiceError::Protocol("closed mid-response".into()))
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends close_notify.
    pub fn close(&mut self) {
        self.tls.close();
    }
}

/// Latency and throughput statistics from one load run.
#[derive(Clone, Debug)]
pub struct LoadStats {
    /// Total completed requests.
    pub requests: u64,
    /// Errors observed.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th percentile latency.
    pub p95_latency: Duration,
}

impl LoadStats {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Closed-loop load generator: `clients` threads each issue requests
/// back-to-back for `duration`.
pub struct LoadGenerator {
    /// Concurrent client threads.
    pub clients: usize,
    /// Run duration.
    pub duration: Duration,
    /// Reuse connections (persistent) or reconnect per request.
    pub persistent: bool,
}

impl LoadGenerator {
    /// Runs the load; `make_request` builds the i-th request of a
    /// client thread.
    pub fn run(
        &self,
        client: &HttpsClient,
        make_request: impl Fn(usize, u64) -> Request + Send + Sync,
    ) -> LoadStats {
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let make_request = &make_request;
        let start = Instant::now();
        let mut all_lat: Vec<Duration> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..self.clients {
                let stop = Arc::clone(&stop);
                let total = Arc::clone(&total);
                let errors = Arc::clone(&errors);
                handles.push(scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut i = 0u64;
                    let mut conn = if self.persistent {
                        client.connect().ok()
                    } else {
                        None
                    };
                    while !stop.load(Ordering::Acquire) {
                        let req = make_request(c, i);
                        let t0 = Instant::now();
                        let ok = if self.persistent {
                            match conn.as_mut() {
                                Some(pc) => match pc.request(&req) {
                                    Ok(_) => true,
                                    Err(_) => {
                                        conn = client.connect().ok();
                                        false
                                    }
                                },
                                None => {
                                    conn = client.connect().ok();
                                    false
                                }
                            }
                        } else {
                            client.request(&req).is_ok()
                        };
                        if ok {
                            latencies.push(t0.elapsed());
                            total.fetch_add(1, Ordering::Relaxed);
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                    if let Some(mut pc) = conn {
                        pc.close();
                    }
                    latencies
                }));
            }
            // Timer thread.
            let duration = self.duration;
            let stop2 = Arc::clone(&stop);
            scope.spawn(move || {
                std::thread::sleep(duration);
                stop2.store(true, Ordering::Release);
            });
            for h in handles {
                if let Ok(lat) = h.join() {
                    all_lat.extend(lat);
                }
            }
        });

        let elapsed = start.elapsed();
        all_lat.sort_unstable();
        let pick = |q: f64| -> Duration {
            if all_lat.is_empty() {
                Duration::ZERO
            } else {
                let idx = ((all_lat.len() - 1) as f64 * q) as usize;
                all_lat[idx]
            }
        };
        let mean = if all_lat.is_empty() {
            Duration::ZERO
        } else {
            all_lat.iter().sum::<Duration>() / all_lat.len() as u32
        };
        LoadStats {
            requests: total.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
            elapsed,
            mean_latency: mean,
            p50_latency: pick(0.5),
            p95_latency: pick(0.95),
        }
    }
}

//! STLS HTTP clients and a closed-loop load generator.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal_crypto::ed25519::VerifyingKey;
use libseal_crypto::SystemRng;
use libseal_httpx::http::{parse_response, Request, Response};
use libseal_telemetry::{Counter, Histogram};
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::stream::SslStream;
use libseal_tlsx::TlsError;

use crate::{Result, ServiceError};

struct ClientMetrics {
    requests: Counter,
    errors: Counter,
    request_ns: Histogram,
}

fn client_metrics() -> &'static ClientMetrics {
    static M: std::sync::OnceLock<ClientMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ClientMetrics {
        requests: libseal_telemetry::counter("services_client_requests_total"),
        errors: libseal_telemetry::counter("services_client_errors_total"),
        request_ns: libseal_telemetry::histogram("services_client_request_ns"),
    })
}

/// A client issuing HTTPS requests over STLS.
pub struct HttpsClient {
    addr: SocketAddr,
    ca_roots: Vec<VerifyingKey>,
}

impl HttpsClient {
    /// Creates a client for `addr` trusting `ca_roots`.
    pub fn new(addr: SocketAddr, ca_roots: Vec<VerifyingKey>) -> Self {
        HttpsClient { addr, ca_roots }
    }

    /// One-shot request on a fresh connection (the paper's
    /// non-persistent worst case: every request pays a handshake).
    ///
    /// # Errors
    ///
    /// Connection, TLS, or protocol failures.
    pub fn request(&self, req: &Request) -> Result<Response> {
        let mut conn = self.connect()?;
        let rsp = conn.request(req)?;
        conn.close();
        Ok(rsp)
    }

    /// Opens a persistent connection.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(&self) -> Result<PersistentConnection> {
        let sock = TcpStream::connect(self.addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_secs(30)))?;
        let cfg = SslConfig::client(self.ca_roots.clone());
        let mut entropy = [0u8; 64];
        SystemRng::new().fill(&mut entropy);
        let tls = SslStream::handshake(cfg, entropy, sock)?;
        Ok(PersistentConnection { tls })
    }
}

/// A persistent (keep-alive) client connection.
pub struct PersistentConnection {
    tls: SslStream<TcpStream>,
}

impl PersistentConnection {
    /// Sends `req` and reads one full response.
    ///
    /// # Errors
    ///
    /// TLS or protocol failures.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.tls.write_all(&req.to_bytes())?;
        let mut buf = Vec::new();
        loop {
            match parse_response(&buf) {
                Ok((rsp, _)) => return Ok(rsp),
                Err(libseal_httpx::ParseError::Incomplete) => {}
                Err(e) => return Err(ServiceError::Protocol(e.to_string())),
            }
            match self.tls.read_some() {
                Ok(d) => buf.extend_from_slice(&d),
                Err(TlsError::Closed) => {
                    return Err(ServiceError::Protocol("closed mid-response".into()))
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends close_notify.
    pub fn close(&mut self) {
        self.tls.close();
    }
}

/// Latency and throughput statistics from one load run.
///
/// Quantiles come from a log-linear [`Histogram`] snapshot, so they
/// are upper bounds within 1/16 relative error of the true sample.
#[derive(Clone, Debug)]
pub struct LoadStats {
    /// Total completed requests.
    pub requests: u64,
    /// Errors observed.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th percentile latency.
    pub p95_latency: Duration,
}

impl LoadStats {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Closed-loop load generator: `clients` threads each issue requests
/// back-to-back for `duration`.
pub struct LoadGenerator {
    /// Concurrent client threads.
    pub clients: usize,
    /// Run duration.
    pub duration: Duration,
    /// Reuse connections (persistent) or reconnect per request.
    pub persistent: bool,
}

impl LoadGenerator {
    /// The process-wide telemetry registry the generator reports into
    /// (`services_client_*` metrics).
    pub fn telemetry(&self) -> &'static libseal_telemetry::Registry {
        libseal_telemetry::global()
    }

    /// Runs the load; `make_request` builds the i-th request of a
    /// client thread.
    pub fn run(
        &self,
        client: &HttpsClient,
        make_request: impl Fn(usize, u64) -> Request + Send + Sync,
    ) -> LoadStats {
        let stop = Arc::new(AtomicBool::new(false));
        // Standalone per-run instruments: the global
        // `services_client_*` metrics accumulate across runs, these
        // scope LoadStats to this run only.
        let run_hist = Histogram::new();
        let run_errors = Counter::new();
        let make_request = &make_request;
        let start = Instant::now();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..self.clients {
                let stop = Arc::clone(&stop);
                let run_hist = run_hist.clone();
                let run_errors = run_errors.clone();
                handles.push(scope.spawn(move || {
                    let mut i = 0u64;
                    let mut conn = if self.persistent {
                        client.connect().ok()
                    } else {
                        None
                    };
                    while !stop.load(Ordering::Acquire) {
                        let req = make_request(c, i);
                        let t0 = Instant::now();
                        let ok = if self.persistent {
                            match conn.as_mut() {
                                Some(pc) => match pc.request(&req) {
                                    Ok(_) => true,
                                    Err(_) => {
                                        conn = client.connect().ok();
                                        false
                                    }
                                },
                                None => {
                                    conn = client.connect().ok();
                                    false
                                }
                            }
                        } else {
                            client.request(&req).is_ok()
                        };
                        if ok {
                            let lat = t0.elapsed();
                            run_hist.record_duration(lat);
                            client_metrics().request_ns.record_duration(lat);
                            client_metrics().requests.inc();
                        } else {
                            run_errors.inc();
                            client_metrics().errors.inc();
                        }
                        i += 1;
                    }
                    if let Some(mut pc) = conn {
                        pc.close();
                    }
                }));
            }
            // Timer thread.
            let duration = self.duration;
            let stop2 = Arc::clone(&stop);
            scope.spawn(move || {
                std::thread::sleep(duration);
                stop2.store(true, Ordering::Release);
            });
            for h in handles {
                let _ = h.join();
            }
        });

        let elapsed = start.elapsed();
        let snap = run_hist.snapshot();
        LoadStats {
            requests: snap.count(),
            errors: run_errors.get(),
            elapsed,
            mean_latency: snap.mean_duration(),
            p50_latency: snap.percentile_duration(0.5),
            p95_latency: snap.percentile_duration(0.95),
        }
    }
}

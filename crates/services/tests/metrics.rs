//! End-to-end observability: an audited Apache server wrapped in a
//! [`MetricsRouter`] serves one `/metrics` text snapshot over STLS
//! that contains metrics from every wired crate — sgxsim, core,
//! sealdb, rote and services.

use std::sync::Arc;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_httpx::http::Request;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

use libseal_services::apache::{ApacheConfig, ApacheServer, MetricsRouter};
use libseal_services::git::GitBackend;
use libseal_services::{HttpsClient, TlsMode};

#[test]
fn metrics_endpoint_covers_every_wired_crate() {
    let ca = CertificateAuthority::new("TestRootCA", &[0x77; 32]);
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    // The default guard is a ROTE quorum, so appends exercise the
    // rote crate as well.
    let ls = LibSeal::new(
        LibSealConfig::builder(cert, key)
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .check_interval(0)
            .build(),
    )
    .unwrap();
    let backend = Arc::new(GitBackend::new());
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(MetricsRouter::wrapping(Arc::new(Arc::clone(&backend)))),
        )
        .workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");

    // Audited traffic: each push crosses the simulated enclave
    // boundary, appends to the sealed log (sealdb + rote), and the
    // explicit check drives the invariant engine.
    let mut prev = "0".to_string();
    for i in 1..=3 {
        let cid = format!("c{i}");
        let rsp = client
            .request(&Request::new(
                "POST",
                "/repo/p/git-receive-pack",
                format!("{prev} {cid} refs/heads/main\n").into_bytes(),
            ))
            .unwrap();
        assert_eq!(rsp.status, 200);
        prev = cid;
    }
    ls.check_now(0).unwrap();

    // The wrapped router still serves its own routes.
    let rsp = client
        .request(&Request::new(
            "GET",
            "/repo/p/info/refs?service=git-upload-pack",
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(rsp.status, 200);

    let rsp = client
        .request(&Request::new("GET", "/metrics", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    let body = String::from_utf8(rsp.body).unwrap();
    for needle in [
        "sgxsim_",
        "core_appends_total",
        "sealdb_statements_total",
        "rote_round_ns",
        "services_apache_requests_total",
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }
    // The boundary-aware span journal rides in the same snapshot.
    assert!(body.contains("apache_request"), "no span trace in:\n{body}");
    server.stop();
}

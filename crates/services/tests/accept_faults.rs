//! Regression tests for transient accept(2) failures. A server whose
//! accept call returns EMFILE/ECONNABORTED-style errors must count
//! the error, back off briefly, and keep serving — never silently
//! shut the listener down (the bug this suite pins: squid's threaded
//! accept loop used to `break` on any accept error).
//!
//! These live in their own test binary: the fault site is process
//! global, and any other server accepting concurrently would consume
//! the armed faults.

use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::{LibSeal, LibSealConfig};
use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::Request;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use plat::failpoint::{self, FaultSpec};

use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, TlsMode};

const SITE: &str = "services::accept";

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("TestRootCA", &[0x77; 32])
}

fn native_tls(ca: &CertificateAuthority) -> (TlsMode, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x33; 32]).unwrap();
    (TlsMode::Native { cert, key }, vec![ca.root_key()])
}

fn libseal_tls(ca: &CertificateAuthority) -> (Arc<LibSeal>, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    let ls = LibSeal::new(
        LibSealConfig::builder(cert, key)
            .cost_model(CostModel::free())
            .check_interval(0)
            .build(),
    )
    .unwrap();
    (ls, vec![ca.root_key()])
}

fn await_hits(scenario: &plat::failpoint::Scenario, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while scenario.hits(SITE) < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        scenario.hits(SITE) >= n,
        "accept fault site hit only {} times, wanted {n}",
        scenario.hits(SITE)
    );
}

/// The PR-5 apache fix, mirrored onto squid: three consecutive accept
/// failures in the threaded loop must not kill the listener.
#[test]
fn squid_threaded_accept_errors_do_not_kill_listener() {
    let errors = libseal_telemetry::counter("services_squid_accept_errors_total");
    let before = errors.get();

    let ca = ca();
    // Origin first, so its accept loop is parked inside accept(2)
    // (past the fault check) before any fault is armed.
    let (origin_tls, origin_roots) = native_tls(&ca);
    let origin = ApacheServer::start(
        ApacheConfig::new(origin_tls, Arc::new(StaticContentRouter)).workers(1),
    )
    .unwrap();

    let scenario = failpoint::scenario();
    scenario.set(SITE, FaultSpec::error().times(3));

    // The threaded accept loop checks the fault site on every
    // iteration, so it eats all three faults (with 5 ms backoffs)
    // straight after start — before any client connects.
    let (ls, roots) = libseal_tls(&ca);
    let proxy = SquidProxy::start(
        SquidConfig::new(TlsMode::LibSeal(ls), origin.addr(), origin_roots, "localhost")
            .workers(1)
            .event_loop(false),
    )
    .unwrap();
    await_hits(&scenario, 3);

    // The listener survived: a real request still proxies through.
    let client = HttpsClient::new(proxy.addr(), roots, "localhost");
    let rsp = client
        .request(&Request::new("GET", "/content/256", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    assert_eq!(rsp.body.len(), 256);
    assert!(
        errors.get() >= before + 3,
        "accept errors should be counted: before {before}, after {}",
        errors.get()
    );

    proxy.stop();
    origin.stop();
}

/// Event-mode accept errors pause the listener for one backoff
/// period; connections queued in the backlog are served afterwards.
#[test]
fn apache_event_accept_errors_back_off_and_recover() {
    if !plat::reactor::supported() {
        return;
    }
    let errors = libseal_telemetry::counter("services_apache_accept_errors_total");
    let before = errors.get();

    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let scenario = failpoint::scenario();
    scenario.set(SITE, FaultSpec::error().times(2));

    let server =
        ApacheServer::start(ApacheConfig::new(tls, Arc::new(StaticContentRouter)).workers(1))
            .unwrap();

    // Each connection attempt makes the listener readable; the first
    // two accept sweeps fault and deregister the listener for 5 ms,
    // but the TCP backlog holds the connection until resume.
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    for _ in 0..3 {
        let rsp = client
            .request(&Request::new("GET", "/content/128", Vec::new()))
            .unwrap();
        assert_eq!(rsp.status, 200);
    }
    assert!(
        scenario.hits(SITE) >= 2,
        "fault site should have fired twice, saw {}",
        scenario.hits(SITE)
    );
    assert!(
        errors.get() >= before + 2,
        "accept errors should be counted: before {before}, after {}",
        errors.get()
    );
    server.stop();
}

//! Event-driven service core: reactor-based Apache and Squid serving
//! real TLS traffic — keep-alive, explicit close, idle eviction, and
//! thousands of parked sessions sharing one reactor thread.
//!
//! Skipped wholesale on platforms without an epoll reactor; the
//! threaded fallback is covered by the other integration suites.

use std::sync::Arc;
use std::time::Duration;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::Request;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::git::GitBackend;
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, TlsMode};

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("TestRootCA", &[0x77; 32])
}

fn native_tls(ca: &CertificateAuthority) -> (TlsMode, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x33; 32]).unwrap();
    (TlsMode::Native { cert, key }, vec![ca.root_key()])
}

fn libseal_tls(
    ca: &CertificateAuthority,
    ssm: Option<Arc<dyn libseal::ServiceModule>>,
) -> (Arc<LibSeal>, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    let mut builder = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .check_interval(0);
    if let Some(ssm) = ssm {
        builder = builder.ssm(ssm);
    }
    (LibSeal::new(builder.build()).unwrap(), vec![ca.root_key()])
}

#[test]
fn native_keep_alive_roundtrips() {
    if !plat::reactor::supported() {
        return;
    }
    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server =
        ApacheServer::start(ApacheConfig::new(tls, Arc::new(StaticContentRouter)).workers(2))
            .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let mut conn = client.connect().unwrap();
    for i in 1..=8 {
        let rsp = conn
            .request(&Request::new(
                "GET",
                &format!("/content/{}", i * 16),
                Vec::new(),
            ))
            .unwrap();
        assert_eq!(rsp.status, 200);
        assert_eq!(rsp.body.len(), i * 16);
    }
    conn.close();
    server.stop();
}

#[test]
fn libseal_sessions_batch_through_one_reactor() {
    if !plat::reactor::supported() {
        return;
    }
    let ca = ca();
    let (ls, roots) = libseal_tls(&ca, Some(Arc::new(GitModule)));
    let backend = Arc::new(GitBackend::new());
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls.clone()), Arc::new(backend)).workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");

    // Several persistent clients interleaving audited pushes: every
    // request decrypts inside the enclave via the batched pump.
    let mut conns: Vec<_> = (0..4).map(|_| client.connect().unwrap()).collect();
    for round in 0..3u64 {
        for (c, conn) in conns.iter_mut().enumerate() {
            let rsp = conn
                .request(&Request::new(
                    "POST",
                    &format!("/repo/r{c}/git-receive-pack"),
                    format!("0 c{round} refs/heads/main\n").into_bytes(),
                ))
                .unwrap();
            assert_eq!(rsp.status, 200);
        }
    }
    for conn in &mut conns {
        conn.close();
    }
    // The audit log held together across the batched transitions.
    ls.verify_log(0).unwrap();
    server.stop();
}

#[test]
fn connection_close_is_honored() {
    if !plat::reactor::supported() {
        return;
    }
    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server =
        ApacheServer::start(ApacheConfig::new(tls, Arc::new(StaticContentRouter)).workers(1))
            .unwrap();

    // Speak TLS by hand so we can watch the close happen.
    let sock = std::net::TcpStream::connect(server.addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let cfg = libseal_tlsx::ssl::SslConfig::client(roots);
    let mut tls = libseal_tlsx::stream::SslStream::handshake(cfg, [0x5a; 64], sock).unwrap();
    let mut req = Request::new("GET", "/content/32", Vec::new());
    req.headers.insert("Connection", "close");
    tls.write_all(&req.to_bytes()).unwrap();
    let mut buf = Vec::new();
    let rsp = loop {
        if let Ok((rsp, _)) = libseal_httpx::http::parse_response(&buf) {
            break rsp;
        }
        match tls.read_some() {
            Ok(d) => buf.extend_from_slice(&d),
            Err(e) => panic!("expected a response before close, got {e}"),
        }
    };
    assert_eq!(rsp.status, 200);
    // After the response drains the server closes the session.
    assert!(matches!(
        tls.read_some(),
        Err(libseal_tlsx::TlsError::Closed) | Ok(_)
    ));
    server.stop();
}

#[test]
fn idle_sessions_are_evicted() {
    if !plat::reactor::supported() {
        return;
    }
    let evictions = libseal_telemetry::counter("services_event_idle_evictions_total");
    let before = evictions.get();

    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server = ApacheServer::start(
        ApacheConfig::new(tls, Arc::new(StaticContentRouter))
            .workers(1)
            .idle_timeout(Duration::from_millis(100)),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let mut conn = client.connect().unwrap();
    let rsp = conn
        .request(&Request::new("GET", "/content/16", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);

    // Park past the idle deadline: the reactor evicts the session.
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        conn.request(&Request::new("GET", "/content/16", Vec::new()))
            .is_err(),
        "request on an evicted session should fail"
    );
    assert!(
        evictions.get() > before,
        "eviction counter should have ticked"
    );
    server.stop();
}

#[test]
fn many_idle_sessions_survive_active_load() {
    if !plat::reactor::supported() {
        return;
    }
    const IDLE: usize = 300;
    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server =
        ApacheServer::start(ApacheConfig::new(tls, Arc::new(StaticContentRouter)).workers(2))
            .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");

    // Register a crowd of established-but-idle sessions.
    let mut idle: Vec<_> = (0..IDLE)
        .map(|_| {
            let mut c = client.connect().unwrap();
            let rsp = c
                .request(&Request::new("GET", "/content/8", Vec::new()))
                .unwrap();
            assert_eq!(rsp.status, 200);
            c
        })
        .collect();
    let open = libseal_telemetry::gauge("services_event_open_connections").get();
    assert!(
        open >= IDLE as i64,
        "reactor should report >= {IDLE} open connections, saw {open}"
    );

    // Active load while the crowd sits parked.
    let mut active = client.connect().unwrap();
    for i in 1..=50 {
        let rsp = active
            .request(&Request::new(
                "GET",
                &format!("/content/{}", (i % 9) * 32),
                Vec::new(),
            ))
            .unwrap();
        assert_eq!(rsp.status, 200);
    }
    active.close();

    // Every parked session is still alive and serviceable.
    for conn in &mut idle {
        let rsp = conn
            .request(&Request::new("GET", "/content/24", Vec::new()))
            .unwrap();
        assert_eq!(rsp.status, 200);
        assert_eq!(rsp.body.len(), 24);
    }
    for conn in &mut idle {
        conn.close();
    }
    server.stop();
}

#[test]
fn malformed_bytes_get_400_and_metric() {
    if !plat::reactor::supported() {
        return;
    }
    let malformed = libseal_telemetry::counter("services_apache_malformed_requests_total");
    let before = malformed.get();

    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server =
        ApacheServer::start(ApacheConfig::new(tls, Arc::new(StaticContentRouter)).workers(1))
            .unwrap();
    let sock = std::net::TcpStream::connect(server.addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let cfg = libseal_tlsx::ssl::SslConfig::client(roots.clone());
    let mut tls = libseal_tlsx::stream::SslStream::handshake(cfg, [0x6b; 64], sock).unwrap();
    tls.write_all(b"DEFINITELY NOT HTTP\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let rsp = loop {
        if let Ok((rsp, _)) = libseal_httpx::http::parse_response(&buf) {
            break rsp;
        }
        match tls.read_some() {
            Ok(d) => buf.extend_from_slice(&d),
            Err(e) => panic!("expected a 400 before close, got {e}"),
        }
    };
    assert_eq!(rsp.status, 400);
    assert!(malformed.get() > before);

    // The listener is unharmed: a fresh, well-formed request works.
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let rsp = client
        .request(&Request::new("GET", "/content/64", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    server.stop();
}

#[test]
fn squid_event_mode_proxies_to_origin() {
    if !plat::reactor::supported() {
        return;
    }
    let ca = ca();
    let (origin_tls, origin_roots) = native_tls(&ca);
    let origin =
        ApacheServer::start(ApacheConfig::new(origin_tls, Arc::new(StaticContentRouter)).workers(2))
            .unwrap();

    let (ls, roots) = libseal_tls(&ca, None);
    let proxy = SquidProxy::start(
        SquidConfig::new(TlsMode::LibSeal(ls), origin.addr(), origin_roots, "localhost").workers(2),
    )
    .unwrap();

    let client = HttpsClient::new(proxy.addr(), roots, "localhost");
    let mut conn = client.connect().unwrap();
    for i in 1..=5 {
        let rsp = conn
            .request(&Request::new(
                "GET",
                &format!("/content/{}", i * 100),
                Vec::new(),
            ))
            .unwrap();
        assert_eq!(rsp.status, 200);
        assert_eq!(rsp.body.len(), i * 100);
    }
    conn.close();
    proxy.stop();
    origin.stop();
}

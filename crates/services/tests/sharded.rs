//! Services against the sharded audit plane: `shards(1)` behaves
//! exactly like a single enclave in both server modes, `shards(4)`
//! spreads sessions across the fleet and still verifies end to end,
//! and the `Service` trait drives Apache and Squid through one
//! generic harness.

use std::sync::Arc;
use std::time::Duration;

use libseal::plane::route_affinity;
use libseal::{AuditPlane, GitModule, LibSealConfig, LibSealError, ShardedPlane};
use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::Request;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::git::GitBackend;
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, LoadGenerator, Service, TlsMode};

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("TestRootCA", &[0x77; 32])
}

fn plane_builder(
    ca: &CertificateAuthority,
    shards: usize,
) -> libseal::LibSealConfigBuilder {
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .check_interval(0)
        .ssm(Arc::new(GitModule))
        .shards(shards)
}

fn push(repo: &str, i: u64) -> Request {
    Request::new(
        "POST",
        &format!("/repo/{repo}/git-receive-pack"),
        format!("old {i:040x} refs/heads/b{}\n", i % 4).into_bytes(),
    )
}

// ---------------------------------------------------------------
// Builder surface
// ---------------------------------------------------------------

#[test]
fn builder_rejects_shards_without_group_commit() {
    let ca = ca();
    let err = plane_builder(&ca, 4).no_group_commit().build_plane().err();
    assert!(
        matches!(err, Some(LibSealError::Config(_))),
        "shards(4) + no_group_commit must be a typed config error, got {err:?}"
    );
}

#[test]
fn builder_rejects_shards_without_an_ssm() {
    let ca = ca();
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    let err = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .shards(2)
        .build_plane()
        .err();
    assert!(
        matches!(err, Some(LibSealError::Config(_))),
        "shards(2) without an SSM must be a typed config error, got {err:?}"
    );
}

#[test]
fn shards_one_builds_a_single_enclave_plane() {
    let ca = ca();
    let plane = plane_builder(&ca, 1).build_plane().unwrap();
    assert_eq!(plane.shards(), 1);
    // And no_group_commit stays legal at one shard.
    let plane = plane_builder(&ca, 1).no_group_commit().build_plane().unwrap();
    assert_eq!(plane.shards(), 1);
}

// ---------------------------------------------------------------
// Routing distribution
// ---------------------------------------------------------------

#[test]
fn route_affinity_spreads_sequential_ids() {
    let shards: Vec<u32> = (0..4).collect();
    let mut counts = [0u64; 4];
    for affinity in 0..4000u64 {
        let s = route_affinity(affinity, &shards).expect("routable");
        counts[s as usize] += 1;
    }
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(min > 0, "a shard received no sessions: {counts:?}");
    assert!(
        max <= 2 * min,
        "shard load ratio {max}/{min} exceeds 2: {counts:?}"
    );
}

#[test]
fn load_generator_conn_ids_spread_across_four_shards() {
    // The generator's documented id scheme: client << 32 | sequence.
    // Route the ids a 4-client run would produce the way a server
    // derives shard affinity, and require the consistent hash to keep
    // the fleet within a 2x load ratio.
    let shards: Vec<u32> = (0..4).collect();
    let mut counts = [0u64; 4];
    for client in 0..4u64 {
        for seq in 0..100u64 {
            let id = (client << 32) | seq;
            let s = route_affinity(id, &shards).expect("routable");
            counts[s as usize] += 1;
        }
    }
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(min > 0, "a shard received no connections: {counts:?}");
    assert!(
        max <= 2 * min,
        "shard load ratio {max}/{min} exceeds 2: {counts:?}"
    );
}

#[test]
fn sharded_plane_balances_opened_sessions() {
    let ca = ca();
    let plane = ShardedPlane::open(plane_builder(&ca, 4).build()).unwrap();
    assert_eq!(plane.shards(), 4);
    for affinity in 0..400u64 {
        let sid = plane.open_session(0, affinity).unwrap();
        plane.close_session(0, sid).unwrap();
    }
    let counts = plane.session_counts();
    assert_eq!(counts.len(), 4);
    let max = counts.iter().map(|&(_, n)| n).max().unwrap();
    let min = counts.iter().map(|&(_, n)| n).min().unwrap();
    assert!(min > 0, "a shard opened no sessions: {counts:?}");
    assert!(
        max <= 2 * min,
        "shard session ratio {max}/{min} exceeds 2: {counts:?}"
    );
}

// ---------------------------------------------------------------
// shards(1) equivalence through the servers
// ---------------------------------------------------------------

fn serve_and_verify(event_loop: bool) {
    let ca = ca();
    let plane = plane_builder(&ca, 1).build_plane().unwrap();
    let roots = vec![ca.root_key()];
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(plane.clone()),
            Arc::new(Arc::new(GitBackend::new())),
        )
        .workers(2)
        .event_loop(event_loop),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    for i in 0..5 {
        let rsp = client.request(&push("p", i)).unwrap();
        assert_eq!(rsp.status, 200);
    }
    server.drain();
    plane.verify_log(0).unwrap();
}

#[test]
fn single_shard_plane_serves_threaded_mode() {
    serve_and_verify(false);
}

#[test]
fn single_shard_plane_serves_event_mode() {
    if !plat::reactor::supported() {
        return;
    }
    serve_and_verify(true);
}

// ---------------------------------------------------------------
// Sharded fleet end to end
// ---------------------------------------------------------------

#[test]
fn sharded_fleet_serves_and_verifies_after_drain() {
    let ca = ca();
    let plane = plane_builder(&ca, 4).epoch_interval(8).build_plane().unwrap();
    assert_eq!(plane.shards(), 4);
    let roots = vec![ca.root_key()];
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(plane.clone()),
            Arc::new(Arc::new(GitBackend::new())),
        )
        .workers(4)
        .event_loop(false),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let stats = LoadGenerator {
        clients: 4,
        duration: Duration::from_millis(400),
        persistent: false,
        ..LoadGenerator::default()
    }
    .run(&client, |c, i| push(&format!("r{c}"), i));
    assert!(stats.requests > 0, "no requests completed");
    assert_eq!(stats.errors, 0, "audited requests failed");

    // Every TLS connection surfaced a distinct id.
    assert!(!stats.conn_ids.is_empty());
    let mut ids = stats.conn_ids.clone();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), stats.conn_ids.len(), "conn ids must be distinct");

    // Drain cuts a final epoch checkpoint and quiesces every shard;
    // the retained handle then verifies the whole fleet, checkpoint
    // chain included.
    server.drain();
    plane.verify_log(0).unwrap();
}

// ---------------------------------------------------------------
// The Service trait drives both servers generically
// ---------------------------------------------------------------

fn drive<S: Service>(config: S::Config, roots: Vec<VerifyingKey>, req: &Request) {
    let svc = S::start(config).unwrap();
    let client = HttpsClient::new(svc.local_addr(), roots, "localhost");
    let rsp = client.request(req).unwrap();
    assert_eq!(rsp.status, 200);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while svc.served() < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(svc.served(), 1);
    // The registry is reachable through the trait for generic gates.
    let _ = svc.telemetry();
    svc.drain();
}

#[test]
fn service_trait_drives_apache_and_squid() {
    let ca = ca();

    // Apache through a single-shard audit plane.
    let plane = plane_builder(&ca, 1).build_plane().unwrap();
    drive::<ApacheServer>(
        ApacheConfig::new(
            TlsMode::LibSeal(plane.clone()),
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .event_loop(false),
        vec![ca.root_key()],
        &Request::new("GET", "/content/128", Vec::new()),
    );
    plane.verify_log(0).unwrap();

    // Squid in front of a native origin, audited client leg.
    let (okey, ocert) = ca.issue_identity("localhost", &[0x33; 32]).unwrap();
    let origin = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: ocert,
                key: okey,
            },
            Arc::new(StaticContentRouter),
        )
        .workers(2)
        .event_loop(false),
    )
    .unwrap();
    let plane = plane_builder(&ca, 1).build_plane().unwrap();
    drive::<SquidProxy>(
        SquidConfig::new(
            TlsMode::LibSeal(plane.clone()),
            origin.addr(),
            vec![ca.root_key()],
            "localhost",
        )
        .workers(2)
        .event_loop(false),
        vec![ca.root_key()],
        &Request::new("GET", "/content/64", Vec::new()),
    );
    plane.verify_log(0).unwrap();
    origin.stop();
}

//! Full-stack integration: real TCP servers terminating STLS through
//! LibSEAL, real clients, injected attacks, and in-band detection —
//! the complete Fig. 1 pipeline for all three services.

use std::sync::Arc;
use std::time::Duration;

use libseal::{DropboxModule, GitModule, LibSeal, LibSealConfig, OwnCloudModule};
use libseal_crypto::ed25519::VerifyingKey;
use libseal_httpx::http::Request;
use libseal_httpx::json::Json;
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;

use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::dropbox::{DropboxAttack, DropboxServer, FileWorkload};
use libseal_services::git::{GitAttack, GitBackend, HistoryGenerator};
use libseal_services::owncloud::{OwnCloudAttack, OwnCloudServer};
use libseal_services::squid::{SquidConfig, SquidProxy};
use libseal_services::{HttpsClient, TlsMode};

/// The served counter increments after the response bytes reach the
/// socket, so a client can observe its response before the counter
/// ticks; wait briefly instead of racing it.
fn await_served(server: &ApacheServer, expected: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.requests_served() < expected && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.requests_served(), expected);
}

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("TestRootCA", &[0x77; 32])
}

fn libseal_for(
    ca: &CertificateAuthority,
    ssm: Option<Arc<dyn libseal::ServiceModule>>,
) -> (Arc<LibSeal>, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    let mut builder = LibSealConfig::builder(cert, key)
        .cost_model(CostModel::free())
        .check_interval(0);
    if let Some(ssm) = ssm {
        builder = builder.ssm(ssm);
    }
    (LibSeal::new(builder.build()).unwrap(), vec![ca.root_key()])
}

#[test]
fn static_content_through_libseal() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, None);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter)).workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let rsp = client
        .request(&Request::new("GET", "/content/1024", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    assert_eq!(rsp.body.len(), 1024);
    await_served(&server, 1);
    server.stop();
}

#[test]
fn wrong_host_certificate_rejected_despite_valid_ca() {
    // Regression: HttpsClient used to skip the expected-subject pin,
    // accepting ANY certificate under the trusted CA. A valid cert for
    // a different host must fail the handshake.
    let ca = ca();
    let (key, cert) = ca.issue_identity("other-host.example", &[0x23; 32]).unwrap();
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native { cert, key },
            Arc::new(StaticContentRouter),
        )
        .workers(1),
    )
    .unwrap();

    // Pinned to the host we meant to reach: rejected.
    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "localhost");
    let err = client
        .request(&Request::new("GET", "/content/16", Vec::new()))
        .unwrap_err();
    assert!(
        matches!(
            &err,
            libseal_services::ServiceError::Tls(libseal_tlsx::TlsError::Verification(m))
                if m.contains("subject mismatch")
        ),
        "expected subject-mismatch verification failure, got {err:?}"
    );
    assert_eq!(server.requests_served(), 0);

    // Pinned to the name the certificate actually carries: accepted.
    let client = HttpsClient::new(server.addr(), vec![ca.root_key()], "other-host.example");
    let rsp = client
        .request(&Request::new("GET", "/content/16", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    server.stop();
}

#[test]
fn keep_alive_connections_work() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, None);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter)).workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let mut conn = client.connect().unwrap();
    for i in 1..=5 {
        let rsp = conn
            .request(&Request::new(
                "GET",
                &format!("/content/{}", i * 10),
                Vec::new(),
            ))
            .unwrap();
        assert_eq!(rsp.body.len(), i * 10);
    }
    conn.close();
    await_served(&server, 5);
    server.stop();
}

#[test]
fn git_attacks_detected_end_to_end() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(GitModule)));
    let backend = Arc::new(GitBackend::new());
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(Arc::clone(&backend)),
        )
        .workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");

    // Honest phase: push two branches, fetch, check → ok.
    let push =
        |body: &str| Request::new("POST", "/repo/p/git-receive-pack", body.as_bytes().to_vec());
    client
        .request(&push("0 c1 refs/heads/main\n0 d1 refs/heads/dev\n"))
        .unwrap();
    let mut fetch = Request::new(
        "GET",
        "/repo/p/info/refs?service=git-upload-pack",
        Vec::new(),
    );
    fetch.headers.insert("Libseal-Check", "1");
    let rsp = client.request(&fetch).unwrap();
    assert_eq!(rsp.headers.get("Libseal-Check-Result"), Some("ok"));

    // Attack: hide the dev branch.
    backend.set_attack(GitAttack::HideRef {
        repo: "p".into(),
        branch: "refs/heads/dev".into(),
    });
    let rsp = client.request(&fetch).unwrap();
    let header = rsp.headers.get("Libseal-Check-Result").unwrap();
    assert!(header.contains("git-completeness"), "{header}");

    // Attack: roll main back.
    backend.set_attack(GitAttack::None);
    client.request(&push("c1 c2 refs/heads/main\n")).unwrap();
    backend.set_attack(GitAttack::Rollback {
        repo: "p".into(),
        branch: "refs/heads/main".into(),
        old_cid: "c1".into(),
    });
    let rsp = client.request(&fetch).unwrap();
    let header = rsp.headers.get("Libseal-Check-Result").unwrap();
    assert!(header.contains("git-soundness"), "{header}");

    ls.verify_log(0).unwrap();
    server.stop();
}

#[test]
fn git_history_replay_stays_clean() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(GitModule)));
    let backend = Arc::new(GitBackend::new());
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(Arc::clone(&backend)),
        )
        .workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let mut generator = HistoryGenerator::new("commons-validator", 4, 1);
    let mut conn = client.connect().unwrap();
    for _ in 0..60 {
        let op = generator.next_op();
        let req = HistoryGenerator::to_request(&op);
        let rsp = conn.request(&req).unwrap();
        assert_eq!(rsp.status, 200);
    }
    conn.close();
    let outcome = ls.check_now(0).unwrap();
    assert_eq!(outcome.total_violations(), 0, "{:?}", outcome.reports);
    // Trimming keeps the log bounded and verifiable.
    ls.trim_now(0).unwrap();
    ls.verify_log(0).unwrap();
    server.stop();
}

#[test]
fn owncloud_lost_edit_detected_end_to_end() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(OwnCloudModule)));
    let oc = Arc::new(OwnCloudServer::new());
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls.clone()), Arc::new(Arc::clone(&oc))).workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(server.addr(), roots, "localhost");

    let join = |who: &str| {
        Request::new(
            "POST",
            "/owncloud/join",
            format!(r#"{{"doc":"d","client":"{who}"}}"#).into_bytes(),
        )
    };
    let sync = |who: &str, ops: &str| {
        Request::new(
            "POST",
            "/owncloud/sync",
            format!(r#"{{"doc":"d","client":"{who}","ops":{ops}}}"#).into_bytes(),
        )
    };
    client.request(&join("bob")).unwrap();
    client
        .request(&sync("alice", r#"[{"content":"+a"},{"content":"+b"}]"#))
        .unwrap();
    // The server drops op 1 on relay to bob.
    oc.set_attack(OwnCloudAttack::DropUpdate {
        doc: "d".into(),
        seq: 1,
    });
    client.request(&sync("bob", "[]")).unwrap();
    let outcome = ls.check_now(0).unwrap();
    assert!(
        outcome
            .reports
            .iter()
            .any(|r| r.invariant == "owncloud-prefix-completeness" && r.violations > 0),
        "{:?}",
        outcome.reports
    );
    server.stop();
}

#[test]
fn dropbox_through_squid_detects_corruption() {
    let ca = ca();
    // Origin: the Dropbox metadata server behind its own TLS identity.
    let (okey, ocert) = ca.issue_identity("dropbox-origin", &[0x31; 32]).unwrap();
    let origin = Arc::new(DropboxServer::new());
    let origin_server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: ocert,
                key: okey,
            },
            Arc::new(Arc::clone(&origin)),
        )
        .workers(2),
    )
    .unwrap();

    // The Squid proxy terminates client TLS through LibSEAL.
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(DropboxModule)));
    let proxy = SquidProxy::start(
        SquidConfig::new(
            TlsMode::LibSeal(ls.clone()),
            origin_server.addr(),
            vec![ca.root_key()],
            "dropbox-origin",
        )
        .workers(2),
    )
    .unwrap();

    let client = HttpsClient::new(proxy.addr(), roots, "localhost");
    let mut conn = client.connect().unwrap();
    let mut workload = FileWorkload::new("acct", "host1");
    for _ in 0..12 {
        let req = workload.next_request();
        let rsp = conn.request(&req).unwrap();
        assert_eq!(rsp.status, 200);
    }
    let outcome = ls.check_now(0).unwrap();
    assert_eq!(outcome.total_violations(), 0, "{:?}", outcome.reports);

    // Attack: corrupt a blocklist; the next listing reveals it.
    origin.set_attack(DropboxAttack::CorruptBlocklist {
        account: "acct".into(),
        file: "file-1.bin".into(),
    });
    let list = Request::new(
        "POST",
        "/dropbox/list",
        br#"{"account":"acct","host":"host1"}"#.to_vec(),
    );
    let rsp = conn.request(&list).unwrap();
    let j = Json::parse_bytes(&rsp.body).unwrap();
    assert!(!j.get("files").unwrap().as_array().unwrap().is_empty());
    conn.close();

    let outcome = ls.check_now(0).unwrap();
    assert!(
        outcome
            .reports
            .iter()
            .any(|r| r.invariant == "dropbox-blocklist-soundness" && r.violations > 0),
        "{:?}",
        outcome.reports
    );
    proxy.stop();
    origin_server.stop();
}

#[test]
fn wan_latency_floor_applies() {
    let ca = ca();
    let (okey, ocert) = ca.issue_identity("dropbox-origin", &[0x31; 32]).unwrap();
    let origin = Arc::new(DropboxServer::with_wan_latency(Duration::from_millis(30)));
    let origin_server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: ocert,
                key: okey,
            },
            Arc::new(origin),
        )
        .workers(2),
    )
    .unwrap();
    let client = HttpsClient::new(origin_server.addr(), vec![ca.root_key()], "dropbox-origin");
    let t0 = std::time::Instant::now();
    client
        .request(&Request::new(
            "POST",
            "/dropbox/list",
            br#"{"account":"a","host":"h"}"#.to_vec(),
        ))
        .unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(30));
    origin_server.stop();
}

#[test]
fn malformed_request_gets_400_and_close() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(GitModule)));
    let server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(StaticContentRouter),
        )
        .workers(1),
    )
    .unwrap();

    // Speak TLS by hand so we can ship provably-not-HTTP bytes.
    let sock = std::net::TcpStream::connect(server.addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let cfg = libseal_tlsx::ssl::SslConfig::client(roots.clone());
    let mut tls = libseal_tlsx::stream::SslStream::handshake(cfg, [0x5a; 64], sock).unwrap();
    tls.write_all(b"NOT-A-REQUEST\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let rsp = loop {
        if let Ok((rsp, _)) = libseal_httpx::http::parse_response(&buf) {
            break rsp;
        }
        match tls.read_some() {
            Ok(d) => buf.extend_from_slice(&d),
            Err(e) => panic!("expected a 400 before close, got {e} after {buf:?}"),
        }
    };
    // The worker answers 400 immediately (no 30 s timeout spin) and
    // closes the connection.
    assert_eq!(rsp.status, 400);
    assert!(matches!(
        tls.read_some(),
        Err(libseal_tlsx::TlsError::Closed) | Ok(_)
    ));

    // A well-formed request on a fresh connection still works, and the
    // audit log stayed consistent.
    let client = HttpsClient::new(server.addr(), roots, "localhost");
    let rsp = client
        .request(&Request::new("GET", "/content/64", Vec::new()))
        .unwrap();
    assert_eq!(rsp.status, 200);
    ls.verify_log(0).unwrap();
    server.stop();
}

#[test]
fn many_concurrent_clients() {
    let ca = ca();
    let (ls, roots) = libseal_for(&ca, None);
    let server = ApacheServer::start(
        ApacheConfig::new(TlsMode::LibSeal(ls), Arc::new(StaticContentRouter)).workers(4),
    )
    .unwrap();
    let addr = server.addr();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let roots = roots.clone();
        handles.push(std::thread::spawn(move || {
            let client = HttpsClient::new(addr, roots, "localhost");
            for _ in 0..5 {
                let rsp = client
                    .request(&Request::new("GET", "/content/256", Vec::new()))
                    .unwrap();
                assert_eq!(rsp.body.len(), 256);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    await_served(&server, 40);
    server.stop();
}

#[test]
fn reverse_proxy_deployment_for_git() {
    // §6.4: Apache in reverse-proxy mode linked against LibSEAL logs
    // all traffic and forwards to Git backend servers.
    let ca = ca();
    // The backend Git server (its own TLS identity, unaudited).
    let (bkey, bcert) = ca.issue_identity("git-backend", &[0x41; 32]).unwrap();
    let backend = Arc::new(GitBackend::new());
    let backend_server = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::Native {
                cert: bcert,
                key: bkey,
            },
            Arc::new(Arc::clone(&backend)),
        )
        .workers(2),
    )
    .unwrap();

    // The audited front end.
    let (ls, roots) = libseal_for(&ca, Some(Arc::new(GitModule)));
    let front = ApacheServer::start(
        ApacheConfig::new(
            TlsMode::LibSeal(ls.clone()),
            Arc::new(libseal_services::apache::ReverseProxyRouter::new(
                backend_server.addr(),
                vec![ca.root_key()],
                "git-backend",
            )),
        )
        .workers(2),
    )
    .unwrap();

    let client = HttpsClient::new(front.addr(), roots, "localhost");
    client
        .request(&Request::new(
            "POST",
            "/repo/p/git-receive-pack",
            b"0 c1 refs/heads/main\n".to_vec(),
        ))
        .unwrap();
    let rsp = client
        .request(&Request::new(
            "GET",
            "/repo/p/info/refs?service=git-upload-pack",
            Vec::new(),
        ))
        .unwrap();
    assert!(String::from_utf8_lossy(&rsp.body).contains("c1 refs/heads/main"));
    // The front end audited both the push and the (faithful) fetch.
    let outcome = ls.check_now(0).unwrap();
    assert_eq!(outcome.total_violations(), 0, "{:?}", outcome.reports);
    let (entries, _, _) = ls.log_stats(0).unwrap();
    assert_eq!(entries, 2);

    // An attack at the backend is still caught at the proxy.
    backend.set_attack(GitAttack::Rollback {
        repo: "p".into(),
        branch: "refs/heads/main".into(),
        old_cid: "c0".into(),
    });
    client
        .request(&Request::new(
            "GET",
            "/repo/p/info/refs?service=git-upload-pack",
            Vec::new(),
        ))
        .unwrap();
    let outcome = ls.check_now(0).unwrap();
    assert!(outcome.total_violations() > 0);
    front.stop();
    backend_server.stop();
}

//! Deterministic network-chaos regression suite: clients whose
//! transports inject short reads, resets, truncation and delays — at
//! the handshake, mid-request and mid-response — against both the
//! event-driven and threaded servers. Chaotic clients may fail; the
//! server must never panic, must keep serving clean clients, and the
//! audit chain must stay verifiable.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use libseal::{GitModule, LibSeal, LibSealConfig};
use libseal_crypto::SystemRng;
use libseal_httpx::http::{parse_response, Request};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::stream::SslStream;
use plat::chaos::{ChaosConfig, ChaosStream};

use libseal_services::apache::{ApacheConfig, ApacheServer, StaticContentRouter};
use libseal_services::{HttpsClient, TlsMode};

/// One chaotic client attempt: handshake over the faulty transport,
/// send one request, try to read one response. All failures are fine;
/// only panics and server damage are not.
fn chaotic_attempt(addr: std::net::SocketAddr, roots: &[libseal_crypto::ed25519::VerifyingKey], cfg: ChaosConfig) {
    let Ok(sock) = TcpStream::connect(addr) else {
        return;
    };
    let _ = sock.set_nodelay(true);
    // Short timeout: a truncated/stalled exchange must not hang the
    // suite.
    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
    let chaotic = ChaosStream::new(sock, cfg);
    let mut entropy = [0u8; 64];
    SystemRng::new().fill(&mut entropy);
    let Ok(mut tls) = SslStream::handshake(SslConfig::client(roots.to_vec()), entropy, chaotic)
    else {
        return;
    };
    let req = Request::new("GET", "/content/256", Vec::new());
    if tls.write_all(&req.to_bytes()).is_err() {
        return;
    }
    let mut buf = Vec::new();
    for _ in 0..64 {
        match tls.read_some() {
            Ok(d) => buf.extend_from_slice(&d),
            Err(_) => return,
        }
        if parse_response(&buf).is_ok() {
            return;
        }
    }
}

/// The fault matrix: resets and truncations positioned to land in the
/// handshake (early ops), the request head/body (middle ops) and the
/// response read (late ops), plus probabilistic short/delay blends.
fn fault_matrix() -> Vec<ChaosConfig> {
    let mut cases = Vec::new();
    for op in [1, 2, 4, 8, 16, 32] {
        cases.push(ChaosConfig::new(100 + op).reset_at(op));
        cases.push(ChaosConfig::new(200 + op).truncate_at(op));
    }
    // Non-fatal degradation: shorts and delays at various densities.
    cases.push(ChaosConfig::new(301).shorts(400));
    cases.push(ChaosConfig::new(302).shorts(200).delays(100, Duration::from_millis(1)));
    cases.push(
        ChaosConfig::new(303)
            .shorts(300)
            .delays(50, Duration::from_millis(2))
            .reset_at(40),
    );
    cases
}

#[test]
fn chaos_matrix_leaves_server_healthy() {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = CertificateAuthority::new("ChaosCA", &[0x66; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[0x31; 32]).unwrap();
        let cfg = LibSealConfig::builder(cert, key)
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let server = ApacheServer::start(
            ApacheConfig::new(TlsMode::LibSeal(ls.clone()), Arc::new(StaticContentRouter))
                .workers(2)
                .event_loop(event)
                // Tight deadlines so truncated/stalled chaotic
                // sessions are reaped quickly.
                .handshake_timeout(Duration::from_millis(400))
                .header_timeout(Duration::from_millis(400))
                .body_timeout(Duration::from_millis(600)),
        )
        .unwrap();
        let roots = vec![ca.root_key()];

        for chaos_cfg in fault_matrix() {
            chaotic_attempt(server.addr(), &roots, chaos_cfg);
        }

        // After the whole matrix the server still serves clean
        // clients...
        let client = HttpsClient::new(server.addr(), roots, "localhost");
        for _ in 0..3 {
            let rsp = client
                .request(&Request::new("GET", "/content/128", Vec::new()))
                .unwrap();
            assert_eq!(rsp.status, 200);
            assert_eq!(rsp.body.len(), 128);
        }
        server.stop();
        // ...and the audit chain of everything that was logged
        // verifies end to end.
        ls.verify_log(0).unwrap();
    }
}

#[test]
fn concurrent_chaos_and_clean_traffic() {
    // Chaotic clients hammering while clean clients run: the clean
    // side must keep completing requests throughout.
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = CertificateAuthority::new("ChaosCA2", &[0x67; 32]);
        let (key, cert) = ca.issue_identity("localhost", &[0x32; 32]).unwrap();
        let (tls, roots) = {
            let cfg = LibSealConfig::builder(cert, key)
                .ssm(Arc::new(GitModule))
                .cost_model(CostModel::free())
                .check_interval(0)
                .build();
            (
                TlsMode::LibSeal(LibSeal::new(cfg).unwrap()),
                vec![ca.root_key()],
            )
        };
        let server = ApacheServer::start(
            ApacheConfig::new(tls, Arc::new(StaticContentRouter))
                .workers(4)
                .event_loop(event)
                .handshake_timeout(Duration::from_millis(400))
                .header_timeout(Duration::from_millis(400)),
        )
        .unwrap();
        let addr = server.addr();

        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let roots = roots.clone();
                scope.spawn(move || {
                    for (i, _) in (0..8).enumerate() {
                        let seed = t * 1000 + i as u64;
                        let cfg = if i % 2 == 0 {
                            ChaosConfig::new(seed).reset_at(2 + (seed % 20))
                        } else {
                            ChaosConfig::new(seed).shorts(300).truncate_at(10 + (seed % 30))
                        };
                        chaotic_attempt(addr, &roots, cfg);
                    }
                });
            }
            let clean_roots = roots.clone();
            scope.spawn(move || {
                let client = HttpsClient::new(addr, clean_roots, "localhost");
                let mut completed = 0u32;
                for _ in 0..10 {
                    if let Ok(rsp) = client.request(&Request::new("GET", "/content/64", Vec::new()))
                    {
                        assert_eq!(rsp.status, 200);
                        completed += 1;
                    }
                }
                assert!(
                    completed >= 8,
                    "clean traffic starved during chaos: {completed}/10"
                );
            });
        });
        server.stop();
    }
}

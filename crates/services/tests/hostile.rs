//! Hostile-network hardening: slowloris eviction, request-size
//! limits, load shedding at the connection cap, and graceful drain —
//! against both the event-driven reactor and the threaded fallback.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use libseal::{GitModule, LibSeal, LibSealConfig, LogBacking};
use libseal_crypto::ed25519::VerifyingKey;
use libseal_crypto::SystemRng;
use libseal_httpx::http::{Limits, Request};
use libseal_sgxsim::cost::CostModel;
use libseal_tlsx::cert::CertificateAuthority;
use libseal_tlsx::ssl::SslConfig;
use libseal_tlsx::stream::SslStream;

use libseal_services::apache::{ApacheConfig, ApacheServer, DelayRouter, StaticContentRouter};
use libseal_services::git::{GitBackend, HistoryGenerator};
use libseal_services::{HttpsClient, TlsMode};

fn ca() -> CertificateAuthority {
    CertificateAuthority::new("HostileCA", &[0x77; 32])
}

fn native_tls(ca: &CertificateAuthority) -> (TlsMode, Vec<VerifyingKey>) {
    let (key, cert) = ca.issue_identity("localhost", &[0x33; 32]).unwrap();
    (TlsMode::Native { cert, key }, vec![ca.root_key()])
}

/// Raw TLS connection for sending hand-crafted (partial, oversized)
/// plaintext the high-level client refuses to produce.
fn tls_connect(addr: std::net::SocketAddr, roots: Vec<VerifyingKey>) -> SslStream<TcpStream> {
    let sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut entropy = [0u8; 64];
    SystemRng::new().fill(&mut entropy);
    SslStream::handshake(SslConfig::client(roots), entropy, sock).unwrap()
}

fn counter(name: &'static str) -> u64 {
    libseal_telemetry::counter(name).get()
}

/// A socket that connects and then sends nothing must be evicted at
/// the handshake deadline, in both serving modes.
#[test]
fn slowloris_handshake_is_evicted() {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = ca();
        let (tls, roots) = native_tls(&ca);
        let server = ApacheServer::start(
            ApacheConfig::new(tls, Arc::new(StaticContentRouter))
                .workers(2)
                .event_loop(event)
                .handshake_timeout(Duration::from_millis(200)),
        )
        .unwrap();
        let evictions = if event {
            "services_event_handshake_timeouts_total"
        } else {
            "services_threaded_handshake_timeouts_total"
        };
        let before = counter(evictions);

        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Say nothing. The server must close us at the deadline.
        let mut buf = [0u8; 64];
        let started = Instant::now();
        loop {
            match sock.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "server never evicted the silent handshake (event={event})"
            );
        }
        assert!(
            counter(evictions) > before,
            "handshake-timeout counter did not move (event={event})"
        );

        // The server must still serve well-behaved clients.
        let client = HttpsClient::new(server.addr(), roots, "localhost");
        let rsp = client
            .request(&Request::new("GET", "/content/16", Vec::new()))
            .unwrap();
        assert_eq!(rsp.status, 200);
        server.stop();
    }
}

/// A client that trickles header bytes without ever finishing the
/// head must be evicted at the header deadline — the deadline covers
/// the whole phase, so each byte does not buy more time.
#[test]
fn slowloris_headers_are_evicted() {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = ca();
        let (tls, roots) = native_tls(&ca);
        let server = ApacheServer::start(
            ApacheConfig::new(tls, Arc::new(StaticContentRouter))
                .workers(2)
                .event_loop(event)
                .header_timeout(Duration::from_millis(300)),
        )
        .unwrap();
        let mut tls_conn = tls_connect(server.addr(), roots.clone());
        tls_conn.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n").unwrap();
        let started = Instant::now();
        let mut evicted = false;
        // Trickle one header byte every 100 ms; the 300 ms phase
        // deadline must still fire.
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(100));
            if tls_conn.write_all(b"y").is_err() || tls_conn.read_some().is_err() {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "trickling client never evicted (event={event})");
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "eviction took far longer than the phase deadline (event={event})"
        );

        let client = HttpsClient::new(server.addr(), roots, "localhost");
        let rsp = client
            .request(&Request::new("GET", "/content/16", Vec::new()))
            .unwrap();
        assert_eq!(rsp.status, 200);
        server.stop();
    }
}

/// Oversized heads get 431, oversized declared bodies 413, and the
/// connection closes — in both modes.
#[test]
fn oversized_requests_get_typed_rejections() {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = ca();
        let (tls, roots) = native_tls(&ca);
        let server = ApacheServer::start(
            ApacheConfig::new(tls, Arc::new(StaticContentRouter))
                .workers(2)
                .event_loop(event)
                .http_limits(Limits {
                    max_head_bytes: 1024,
                    max_headers: 16,
                    max_body_bytes: 4096,
                }),
        )
        .unwrap();

        // 431: a single header larger than the whole head budget.
        let mut conn = tls_connect(server.addr(), roots.clone());
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(4 * 1024)
        );
        conn.write_all(huge.as_bytes()).unwrap();
        let mut rsp_buf = Vec::new();
        let mut status = None;
        while status.is_none() {
            match conn.read_some() {
                Ok(d) => {
                    rsp_buf.extend_from_slice(&d);
                    if let Ok((rsp, _)) = libseal_httpx::http::parse_response(&rsp_buf) {
                        status = Some(rsp.status);
                    }
                }
                Err(_) => break,
            }
        }
        assert_eq!(status, Some(431), "oversized head (event={event})");

        // 413: a declared body over the budget, rejected before the
        // body is sent.
        let mut conn = tls_connect(server.addr(), roots.clone());
        conn.write_all(b"POST /up HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
            .unwrap();
        let mut rsp_buf = Vec::new();
        let mut status = None;
        while status.is_none() {
            match conn.read_some() {
                Ok(d) => {
                    rsp_buf.extend_from_slice(&d);
                    if let Ok((rsp, _)) = libseal_httpx::http::parse_response(&rsp_buf) {
                        status = Some(rsp.status);
                    }
                }
                Err(_) => break,
            }
        }
        assert_eq!(status, Some(413), "oversized body (event={event})");

        // In-budget requests still work.
        let client = HttpsClient::new(server.addr(), roots, "localhost");
        let rsp = client
            .request(&Request::new("GET", "/content/16", Vec::new()))
            .unwrap();
        assert_eq!(rsp.status, 200);
        server.stop();
    }
}

/// At the connection cap the server refuses new sockets fast (the
/// shed shows up to the client as a failed connect/handshake) while
/// established connections keep working.
#[test]
fn connection_cap_sheds_excess() {
    for event in [true, false] {
        if event && !plat::reactor::supported() {
            continue;
        }
        let ca = ca();
        let (tls, roots) = native_tls(&ca);
        let server = ApacheServer::start(
            ApacheConfig::new(tls, Arc::new(StaticContentRouter))
                .workers(2)
                .event_loop(event)
                .max_connections(2),
        )
        .unwrap();
        let sheds = if event {
            "services_event_sheds_total"
        } else {
            "services_threaded_sheds_total"
        };
        let before = counter(sheds);
        let client = HttpsClient::new(server.addr(), roots, "localhost");

        let mut held: Vec<_> = (0..2).map(|_| client.connect().unwrap()).collect();
        // Give the reactor a beat to register both sessions.
        std::thread::sleep(Duration::from_millis(100));

        // Excess connections are refused; keep trying briefly since
        // the accept loop races the connect.
        let mut shed_seen = false;
        for _ in 0..50 {
            if client.connect().is_err() || counter(sheds) > before {
                shed_seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(shed_seen, "no shed at the cap (event={event})");
        assert!(counter(sheds) > before, "shed counter unmoved (event={event})");

        // The held connections still serve.
        for conn in &mut held {
            let rsp = conn
                .request(&Request::new("GET", "/content/16", Vec::new()))
                .unwrap();
            assert_eq!(rsp.status, 200);
        }
        for mut conn in held {
            conn.close();
        }
        server.stop();
    }
}

/// Drain under load: an in-flight (slow) request is still answered,
/// the audit chain seals gap-free, and a reopened instance verifies
/// the full history.
#[test]
fn drain_under_load_keeps_chain_verifiable() {
    if !plat::reactor::supported() {
        return;
    }
    let ca = ca();
    let (key, cert) = ca.issue_identity("localhost", &[0x21; 32]).unwrap();
    let path = plat::tmp::TempPath::new("hostile-drain", "log");

    {
        let cfg = LibSealConfig::builder(cert.clone(), key.clone())
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(path.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let backend = Arc::new(GitBackend::new());
        let server = ApacheServer::start(
            ApacheConfig::new(
                TlsMode::LibSeal(ls.clone()),
                Arc::new(DelayRouter {
                    delay: Duration::from_millis(150),
                    busy: false,
                    inner: Arc::new(Arc::clone(&backend)),
                }),
            )
            .workers(2)
            .drain_timeout(Duration::from_secs(5)),
        )
        .unwrap();
        let addr = server.addr();
        let roots = vec![ca.root_key()];

        // Seed some completed, audited traffic.
        let client = HttpsClient::new(addr, roots.clone(), "localhost");
        let mut generator = HistoryGenerator::new("repo", 2, 4);
        for _ in 0..6 {
            let req = HistoryGenerator::to_request(&generator.next_op());
            client.request(&req).unwrap();
        }
        let slow_req = HistoryGenerator::to_request(&generator.next_op());

        // Fire a slow request, then drain while it is in flight.
        let inflight = std::thread::spawn(move || {
            let client = HttpsClient::new(addr, roots, "localhost");
            client.request(&slow_req)
        });
        std::thread::sleep(Duration::from_millis(60));
        let drained_at = Instant::now();
        server.drain();
        assert!(
            drained_at.elapsed() < Duration::from_secs(10),
            "drain exceeded its deadline by far"
        );
        inflight
            .join()
            .unwrap()
            .expect("in-flight request must be answered during drain");
        ls.verify_log(0).unwrap();
    }

    // Reopen the sealed journal: the chain must be gap-free.
    {
        let cfg = LibSealConfig::builder(cert, key)
            .ssm(Arc::new(GitModule))
            .cost_model(CostModel::free())
            .backing(LogBacking::Disk(path.to_path_buf()))
            .check_interval(0)
            .build();
        let ls = LibSeal::new(cfg).unwrap();
        let (entries, _, journal) = ls.log_stats(0).unwrap();
        assert!(entries > 0, "drained log lost its entries");
        assert!(journal > 0);
        ls.verify_log(0).unwrap();
    }
}

/// Threaded drain also delivers the in-flight response before
/// exiting.
#[test]
fn threaded_drain_delivers_inflight() {
    let ca = ca();
    let (tls, roots) = native_tls(&ca);
    let server = ApacheServer::start(
        ApacheConfig::new(
            tls,
            Arc::new(DelayRouter {
                delay: Duration::from_millis(150),
                busy: false,
                inner: Arc::new(StaticContentRouter),
            }),
        )
        .workers(2)
        .event_loop(false),
    )
    .unwrap();
    let addr = server.addr();
    let inflight = std::thread::spawn(move || {
        let client = HttpsClient::new(addr, roots, "localhost");
        client.request(&Request::new("GET", "/content/48", Vec::new()))
    });
    std::thread::sleep(Duration::from_millis(60));
    server.drain();
    let rsp = inflight
        .join()
        .unwrap()
        .expect("in-flight request must be answered during threaded drain");
    assert_eq!(rsp.status, 200);
    assert_eq!(rsp.body.len(), 48);
}

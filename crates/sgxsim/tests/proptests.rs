//! Property-based tests for the TEE simulator's security mechanisms
//! (deterministic `plat::check` harness; same properties and case
//! counts as the original proptest suite).

use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;
use libseal_sgxsim::seal::{seal_with_key, unseal_with_key, SealingPolicy};

plat::prop! {
    #![cases(32)]

    fn sealing_roundtrip(g) {
        let key = g.byte_array::<32>();
        let nonce = g.byte_array::<12>();
        let aad = g.bytes(0..32);
        let data = g.bytes(0..600);
        let sealed = seal_with_key(&key, &nonce, &aad, &data);
        assert_eq!(unseal_with_key(&key, &aad, &sealed).unwrap(), data);
    }

    fn sealed_blobs_resist_tampering(g) {
        let key = g.byte_array::<32>();
        let nonce = g.byte_array::<12>();
        let data = g.bytes(1..300);
        let mut sealed = seal_with_key(&key, &nonce, b"", &data);
        let idx = g.index(sealed.len());
        sealed[idx] ^= 0x01;
        assert!(unseal_with_key(&key, b"", &sealed).is_none());
    }

    fn enclave_seal_policies_are_isolated(g) {
        let data = g.bytes(0..200);
        let e = EnclaveBuilder::new(b"prop-enclave")
            .cost_model(CostModel::free())
            .build(|_| ());
        let (mr, signer) = e
            .ecall("probe", |_, sv| {
                (
                    sv.seal_data(SealingPolicy::MrEnclave, b"", &data),
                    sv.seal_data(SealingPolicy::MrSigner, b"", &data),
                )
            })
            .unwrap();
        // Cross-policy unsealing must fail; same-policy must succeed.
        e.ecall("probe", |_, sv| {
            assert!(sv.unseal_data(SealingPolicy::MrEnclave, b"", &mr).is_ok());
            assert!(sv.unseal_data(SealingPolicy::MrSigner, b"", &signer).is_ok());
            assert!(sv.unseal_data(SealingPolicy::MrSigner, b"", &mr).is_err());
            assert!(sv.unseal_data(SealingPolicy::MrEnclave, b"", &signer).is_err());
        })
        .unwrap();
    }

    fn transition_pricing_is_monotonic(g) {
        let a = g.u64() % 63 + 1;
        let b = g.u64() % 63 + 1;
        let m = CostModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(m.transition_cycles(lo) <= m.transition_cycles(hi));
    }
}

//! Property-based tests for the TEE simulator's security mechanisms.

use libseal_sgxsim::cost::CostModel;
use libseal_sgxsim::enclave::EnclaveBuilder;
use libseal_sgxsim::seal::{seal_with_key, unseal_with_key, SealingPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sealing_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        data in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let sealed = seal_with_key(&key, &nonce, &aad, &data);
        prop_assert_eq!(unseal_with_key(&key, &aad, &sealed).unwrap(), data);
    }

    #[test]
    fn sealed_blobs_resist_tampering(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        data in proptest::collection::vec(any::<u8>(), 1..300),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut sealed = seal_with_key(&key, &nonce, b"", &data);
        let idx = flip.index(sealed.len());
        sealed[idx] ^= 0x01;
        prop_assert!(unseal_with_key(&key, b"", &sealed).is_none());
    }

    #[test]
    fn enclave_seal_policies_are_isolated(
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let e = EnclaveBuilder::new(b"prop-enclave")
            .cost_model(CostModel::free())
            .build(|_| ());
        let (mr, signer) = e
            .ecall("probe", |_, sv| {
                (
                    sv.seal_data(SealingPolicy::MrEnclave, b"", &data),
                    sv.seal_data(SealingPolicy::MrSigner, b"", &data),
                )
            })
            .unwrap();
        // Cross-policy unsealing must fail; same-policy must succeed.
        e.ecall("probe", |_, sv| {
            assert!(sv.unseal_data(SealingPolicy::MrEnclave, b"", &mr).is_ok());
            assert!(sv.unseal_data(SealingPolicy::MrSigner, b"", &signer).is_ok());
            assert!(sv.unseal_data(SealingPolicy::MrSigner, b"", &mr).is_err());
            assert!(sv.unseal_data(SealingPolicy::MrEnclave, b"", &signer).is_err());
        })
        .unwrap();
    }

    #[test]
    fn transition_pricing_is_monotonic(a in 1u64..64, b in 1u64..64) {
        let m = CostModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.transition_cycles(lo) <= m.transition_cycles(hi));
    }
}

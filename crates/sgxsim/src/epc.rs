//! Enclave page cache (EPC) accounting.
//!
//! Real SGX enclaves that exceed the EPC limit page 4 KB chunks between
//! protected memory and DRAM at high cost (§2.5). The simulator tracks
//! how much "enclave memory" is live and charges the cost model for
//! swaps whenever the working set exceeds the limit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use libseal_telemetry::Gauge;

use crate::cost::CostModel;
use crate::stats::TransitionStats;

const PAGE: u64 = 4096;

/// Process-wide resident-bytes gauge aggregated over all enclaves.
fn resident_gauge() -> &'static Gauge {
    static G: OnceLock<Gauge> = OnceLock::new();
    G.get_or_init(|| libseal_telemetry::gauge("sgxsim_epc_resident_bytes"))
}

/// Tracks simulated enclave memory pressure.
#[derive(Default)]
pub struct EpcState {
    resident_bytes: AtomicU64,
}

impl EpcState {
    /// Creates an empty EPC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently resident in the simulated EPC.
    pub fn resident(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Registers `bytes` of new enclave memory; charges paging costs if
    /// the allocation pushes the working set past the EPC limit.
    pub fn alloc(&self, bytes: u64, model: &CostModel, stats: &TransitionStats) {
        let after = self.resident_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        resident_gauge().add(bytes as i64);
        if after > model.epc_limit_bytes {
            let overflow = after - model.epc_limit_bytes;
            // Newly allocated pages beyond the limit each force an
            // eviction + load pair.
            let pages = overflow.min(bytes).div_ceil(PAGE);
            stats.record_page_swaps(pages);
            model.charge_cycles(pages * model.epc_page_swap_cycles);
        }
    }

    /// Releases `bytes` of enclave memory.
    pub fn free(&self, bytes: u64) {
        let mut cur = self.resident_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.resident_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    resident_gauge().sub((cur - next) as i64);
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Charges the access cost for touching `bytes` of enclave memory:
    /// free while the working set fits the EPC, paging otherwise.
    pub fn touch(&self, bytes: u64, model: &CostModel, stats: &TransitionStats) {
        let resident = self.resident();
        if resident <= model.epc_limit_bytes {
            return;
        }
        // Probability of a touched page being swapped out approximates
        // the overflow fraction of the working set.
        let overflow_fraction = (resident - model.epc_limit_bytes) as f64 / resident.max(1) as f64;
        let pages_touched = bytes.div_ceil(PAGE);
        let swaps = (pages_touched as f64 * overflow_fraction).ceil() as u64;
        if swaps > 0 {
            stats.record_page_swaps(swaps);
            model.charge_cycles(swaps * model.epc_page_swap_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_resident() {
        let epc = EpcState::new();
        let model = CostModel::free();
        let stats = TransitionStats::new();
        epc.alloc(10_000, &model, &stats);
        assert_eq!(epc.resident(), 10_000);
        epc.free(4_000);
        assert_eq!(epc.resident(), 6_000);
        epc.free(100_000); // saturates at zero
        assert_eq!(epc.resident(), 0);
    }

    #[test]
    fn overflow_records_swaps() {
        let epc = EpcState::new();
        let model = CostModel {
            enabled: false,
            epc_limit_bytes: 8192,
            ..CostModel::default()
        };
        let stats = TransitionStats::new();
        epc.alloc(8192, &model, &stats);
        assert_eq!(stats.snapshot().epc_page_swaps, 0);
        epc.alloc(4096, &model, &stats);
        assert_eq!(stats.snapshot().epc_page_swaps, 1);
    }

    #[test]
    fn touch_below_limit_is_free() {
        let epc = EpcState::new();
        let model = CostModel {
            enabled: false,
            epc_limit_bytes: 1 << 20,
            ..CostModel::default()
        };
        let stats = TransitionStats::new();
        epc.alloc(4096, &model, &stats);
        epc.touch(4096, &model, &stats);
        assert_eq!(stats.snapshot().epc_page_swaps, 0);
    }

    #[test]
    fn touch_above_limit_charges() {
        let epc = EpcState::new();
        let model = CostModel {
            enabled: false,
            epc_limit_bytes: 4096,
            ..CostModel::default()
        };
        let stats = TransitionStats::new();
        epc.alloc(40_960, &model, &stats);
        let before = stats.snapshot().epc_page_swaps;
        epc.touch(40_960, &model, &stats);
        assert!(stats.snapshot().epc_page_swaps > before);
    }
}

//! Transition accounting.
//!
//! §4.2 of the paper reports ecall/ocall *counts* (the optimisations
//! reduce them by 31%/49% for Apache); these counters make those
//! experiments measurable in the reproduction.

use std::collections::HashMap;
use std::sync::OnceLock;

use libseal_telemetry::Counter;
use plat::sync::Mutex;

/// Global-registry counters aggregating every enclave's transitions
/// (the per-enclave [`TransitionStats`] handles stay private so
/// `snapshot()`/`reset()` keep their per-instance semantics).
struct GlobalCounters {
    ecalls: Counter,
    ocalls: Counter,
    async_ecalls: Counter,
    async_ocalls: Counter,
    batch_ecalls: Counter,
    batch_items: Counter,
    cycles_charged: Counter,
    epc_page_swaps: Counter,
}

fn globals() -> &'static GlobalCounters {
    static G: OnceLock<GlobalCounters> = OnceLock::new();
    G.get_or_init(|| GlobalCounters {
        ecalls: libseal_telemetry::counter("sgxsim_ecalls_total"),
        ocalls: libseal_telemetry::counter("sgxsim_ocalls_total"),
        async_ecalls: libseal_telemetry::counter("sgxsim_async_ecalls_total"),
        async_ocalls: libseal_telemetry::counter("sgxsim_async_ocalls_total"),
        batch_ecalls: libseal_telemetry::counter("sgxsim_batch_ecalls_total"),
        batch_items: libseal_telemetry::counter("sgxsim_batch_items_total"),
        cycles_charged: libseal_telemetry::counter("sgxsim_cycles_charged_total"),
        epc_page_swaps: libseal_telemetry::counter("sgxsim_epc_page_swaps_total"),
    })
}

/// Shared counters for one enclave's transitions, built on telemetry
/// counter handles. Every record also bumps the process-wide
/// `sgxsim_*` metrics and attributes the charged cycles to any
/// telemetry span open on the calling thread.
#[derive(Default)]
pub struct TransitionStats {
    ecalls: Counter,
    ocalls: Counter,
    async_ecalls: Counter,
    async_ocalls: Counter,
    batch_ecalls: Counter,
    batch_items: Counter,
    cycles_charged: Counter,
    epc_page_swaps: Counter,
    by_name: Mutex<HashMap<&'static str, u64>>,
}

impl TransitionStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one synchronous ecall under `name`.
    pub fn record_ecall(&self, name: &'static str, cycles: u64) {
        self.ecalls.inc();
        self.cycles_charged.add(cycles);
        let g = globals();
        g.ecalls.inc();
        g.cycles_charged.add(cycles);
        libseal_telemetry::charge_boundary_cycles(cycles);
        *self.by_name.lock().entry(name).or_insert(0) += 1;
    }

    /// Records one synchronous ocall under `name`.
    pub fn record_ocall(&self, name: &'static str, cycles: u64) {
        self.ocalls.inc();
        self.cycles_charged.add(cycles);
        let g = globals();
        g.ocalls.inc();
        g.cycles_charged.add(cycles);
        libseal_telemetry::charge_boundary_cycles(cycles);
        *self.by_name.lock().entry(name).or_insert(0) += 1;
    }

    /// Records one asynchronous ecall handoff of `handoff_cycles`.
    pub fn record_async_ecall(&self, handoff_cycles: u64) {
        self.async_ecalls.inc();
        globals().async_ecalls.inc();
        libseal_telemetry::charge_boundary_cycles(handoff_cycles);
    }

    /// Records one asynchronous ocall handoff of `handoff_cycles`.
    pub fn record_async_ocall(&self, handoff_cycles: u64) {
        self.async_ocalls.inc();
        globals().async_ocalls.inc();
        libseal_telemetry::charge_boundary_cycles(handoff_cycles);
    }

    /// Records one *batched* ecall carrying `items` units of work —
    /// a single transition amortised across many sessions (mirrors
    /// `seal_batch`/`verify_batch` and the paper's §4.3 motivation:
    /// fewer crossings per byte served). Counted as one ecall plus
    /// batch pricing, so transitions-per-request gates can divide
    /// `batch_items` by `batch_ecalls` to see the amortisation.
    pub fn record_batch_ecall(&self, name: &'static str, cycles: u64, items: u64) {
        self.ecalls.inc();
        self.batch_ecalls.inc();
        self.batch_items.add(items);
        self.cycles_charged.add(cycles);
        let g = globals();
        g.ecalls.inc();
        g.batch_ecalls.inc();
        g.batch_items.add(items);
        g.cycles_charged.add(cycles);
        libseal_telemetry::charge_boundary_cycles(cycles);
        *self.by_name.lock().entry(name).or_insert(0) += 1;
    }

    /// Records `n` EPC page swaps.
    pub fn record_page_swaps(&self, n: u64) {
        self.epc_page_swaps.add(n);
        globals().epc_page_swaps.add(n);
    }

    /// Takes a consistent snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ecalls: self.ecalls.get(),
            ocalls: self.ocalls.get(),
            async_ecalls: self.async_ecalls.get(),
            async_ocalls: self.async_ocalls.get(),
            batch_ecalls: self.batch_ecalls.get(),
            batch_items: self.batch_items.get(),
            cycles_charged: self.cycles_charged.get(),
            epc_page_swaps: self.epc_page_swaps.get(),
            by_name: self.by_name.lock().clone(),
        }
    }

    /// Resets every per-enclave counter to zero (the global-registry
    /// aggregates are monotonic and unaffected).
    pub fn reset(&self) {
        self.ecalls.reset();
        self.ocalls.reset();
        self.async_ecalls.reset();
        self.async_ocalls.reset();
        self.batch_ecalls.reset();
        self.batch_items.reset();
        self.cycles_charged.reset();
        self.epc_page_swaps.reset();
        self.by_name.lock().clear();
    }
}

/// A point-in-time copy of the transition counters.
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Synchronous ecalls executed.
    pub ecalls: u64,
    /// Synchronous ocalls executed.
    pub ocalls: u64,
    /// Asynchronous ecall handoffs.
    pub async_ecalls: u64,
    /// Asynchronous ocall handoffs.
    pub async_ocalls: u64,
    /// Batched ecalls (each also counted in `ecalls`).
    pub batch_ecalls: u64,
    /// Work items carried by batched ecalls.
    pub batch_items: u64,
    /// Total cycles charged by the cost model.
    pub cycles_charged: u64,
    /// EPC pages swapped to/from unprotected memory.
    pub epc_page_swaps: u64,
    /// Per-interface-function call counts.
    pub by_name: HashMap<&'static str, u64>,
}

impl StatsSnapshot {
    /// Total transitions of any kind.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.ecalls + self.ocalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TransitionStats::new();
        s.record_ecall("ssl_read", 8_400);
        s.record_ecall("ssl_read", 8_400);
        s.record_ocall("write", 8_400);
        s.record_async_ecall(450);
        let snap = s.snapshot();
        assert_eq!(snap.ecalls, 2);
        assert_eq!(snap.ocalls, 1);
        assert_eq!(snap.async_ecalls, 1);
        assert_eq!(snap.total_transitions(), 3);
        assert_eq!(snap.cycles_charged, 25_200);
        assert_eq!(snap.by_name["ssl_read"], 2);
    }

    #[test]
    fn reset_zeroes() {
        let s = TransitionStats::new();
        s.record_ecall("x", 10);
        s.record_page_swaps(5);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.total_transitions(), 0);
        assert_eq!(snap.epc_page_swaps, 0);
        assert!(snap.by_name.is_empty());
    }
}

//! Transition accounting.
//!
//! §4.2 of the paper reports ecall/ocall *counts* (the optimisations
//! reduce them by 31%/49% for Apache); these counters make those
//! experiments measurable in the reproduction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use plat::sync::Mutex;

/// Shared counters for one enclave's transitions.
#[derive(Default)]
pub struct TransitionStats {
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    async_ecalls: AtomicU64,
    async_ocalls: AtomicU64,
    cycles_charged: AtomicU64,
    epc_page_swaps: AtomicU64,
    by_name: Mutex<HashMap<&'static str, u64>>,
}

impl TransitionStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one synchronous ecall under `name`.
    pub fn record_ecall(&self, name: &'static str, cycles: u64) {
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.cycles_charged.fetch_add(cycles, Ordering::Relaxed);
        *self.by_name.lock().entry(name).or_insert(0) += 1;
    }

    /// Records one synchronous ocall under `name`.
    pub fn record_ocall(&self, name: &'static str, cycles: u64) {
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.cycles_charged.fetch_add(cycles, Ordering::Relaxed);
        *self.by_name.lock().entry(name).or_insert(0) += 1;
    }

    /// Records one asynchronous ecall handoff.
    pub fn record_async_ecall(&self) {
        self.async_ecalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one asynchronous ocall handoff.
    pub fn record_async_ocall(&self) {
        self.async_ocalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` EPC page swaps.
    pub fn record_page_swaps(&self, n: u64) {
        self.epc_page_swaps.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            async_ecalls: self.async_ecalls.load(Ordering::Relaxed),
            async_ocalls: self.async_ocalls.load(Ordering::Relaxed),
            cycles_charged: self.cycles_charged.load(Ordering::Relaxed),
            epc_page_swaps: self.epc_page_swaps.load(Ordering::Relaxed),
            by_name: self.by_name.lock().clone(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.ecalls.store(0, Ordering::Relaxed);
        self.ocalls.store(0, Ordering::Relaxed);
        self.async_ecalls.store(0, Ordering::Relaxed);
        self.async_ocalls.store(0, Ordering::Relaxed);
        self.cycles_charged.store(0, Ordering::Relaxed);
        self.epc_page_swaps.store(0, Ordering::Relaxed);
        self.by_name.lock().clear();
    }
}

/// A point-in-time copy of the transition counters.
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Synchronous ecalls executed.
    pub ecalls: u64,
    /// Synchronous ocalls executed.
    pub ocalls: u64,
    /// Asynchronous ecall handoffs.
    pub async_ecalls: u64,
    /// Asynchronous ocall handoffs.
    pub async_ocalls: u64,
    /// Total cycles charged by the cost model.
    pub cycles_charged: u64,
    /// EPC pages swapped to/from unprotected memory.
    pub epc_page_swaps: u64,
    /// Per-interface-function call counts.
    pub by_name: HashMap<&'static str, u64>,
}

impl StatsSnapshot {
    /// Total transitions of any kind.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.ecalls + self.ocalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TransitionStats::new();
        s.record_ecall("ssl_read", 8_400);
        s.record_ecall("ssl_read", 8_400);
        s.record_ocall("write", 8_400);
        s.record_async_ecall();
        let snap = s.snapshot();
        assert_eq!(snap.ecalls, 2);
        assert_eq!(snap.ocalls, 1);
        assert_eq!(snap.async_ecalls, 1);
        assert_eq!(snap.total_transitions(), 3);
        assert_eq!(snap.cycles_charged, 25_200);
        assert_eq!(snap.by_name["ssl_read"], 2);
    }

    #[test]
    fn reset_zeroes() {
        let s = TransitionStats::new();
        s.record_ecall("x", 10);
        s.record_page_swaps(5);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.total_transitions(), 0);
        assert_eq!(snap.epc_page_swaps, 0);
        assert!(snap.by_name.is_empty());
    }
}

#![warn(missing_docs)]
//! A simulated Intel SGX trusted execution environment.
//!
//! The LibSEAL paper runs on SGX hardware; this workspace has none, so
//! this crate provides a software stand-in that preserves the two
//! properties the paper's design and evaluation depend on:
//!
//! 1. **A trust boundary.** Trusted state lives inside an [`Enclave`]
//!    and is reachable *only* through registered ecalls; enclave code
//!    reaches the outside world only through ocalls. Sealing binds
//!    persisted data to the enclave's signing authority, and quotes
//!    ([`attest`]) let remote parties verify what code they talk to.
//!
//! 2. **A cost model.** Every enclave transition charges a calibrated
//!    number of CPU cycles (8,400 per synchronous call in the paper's
//!    micro-benchmark, §4.2, growing with in-enclave thread count,
//!    §6.8), and enclave memory beyond the EPC limit pays a paging
//!    penalty (§2.5). Costs are *really spent* — the simulator spins the
//!    CPU — so end-to-end throughput measurements over real sockets
//!    reproduce the paper's relative overheads.
//!
//! The asynchronous call mechanism of §4.3 that avoids these transition
//! costs lives in the `libseal-lthread` crate, layered on top of this
//! one.

pub mod attest;
pub mod cost;
pub mod counter;
pub mod enclave;
pub mod epc;
pub mod pool;
pub mod seal;
pub mod stats;

pub use attest::{AttestationService, Quote, QuotingEnclave};
pub use cost::CostModel;
pub use counter::MonotonicCounter;
pub use enclave::{CallId, Enclave, EnclaveBuilder, EnclaveServices};
pub use epc::EpcState;
pub use pool::MemoryPool;
pub use seal::SealingPolicy;
pub use stats::{StatsSnapshot, TransitionStats};

/// Errors surfaced by the simulated TEE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// All TCS slots are busy: too many threads inside the enclave.
    OutOfTcs,
    /// A sealed blob failed to authenticate or decrypt.
    SealingFailure,
    /// A hardware monotonic counter wore out or was used incorrectly.
    CounterFailure(String),
    /// A quote failed verification.
    AttestationFailure,
    /// An interface check on an ecall/ocall parameter failed.
    InterfaceViolation(String),
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::OutOfTcs => write!(f, "no free TCS slot for enclave entry"),
            SgxError::SealingFailure => write!(f, "sealed data failed to unseal"),
            SgxError::CounterFailure(m) => write!(f, "monotonic counter failure: {m}"),
            SgxError::AttestationFailure => write!(f, "quote verification failed"),
            SgxError::InterfaceViolation(m) => write!(f, "interface check failed: {m}"),
        }
    }
}

impl std::error::Error for SgxError {}

/// Convenience alias for fallible TEE operations.
pub type Result<T> = std::result::Result<T, SgxError>;

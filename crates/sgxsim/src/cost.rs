//! The SGX performance cost model.
//!
//! The paper's micro-benchmarks give the anchors:
//!
//! - one synchronous enclave transition costs ~8,400 cycles (§4.2),
//!   about 6× a system call;
//! - with 48 threads executing inside the enclave, one ecall costs
//!   ~170,000 cycles — a 20× increase (§6.8);
//! - EPC paging beyond the ~128 MB limit is expensive (§2.5).
//!
//! Costs are charged by *actually spinning the CPU* for the equivalent
//! wall-clock time, so end-to-end measurements (requests/sec over real
//! sockets) reflect the modelled SGX tax. Spin throughput is calibrated
//! once per process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Tunable cost parameters for the simulated TEE.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Whether costs are charged at all. Unit tests disable this.
    pub enabled: bool,
    /// Assumed CPU clock in GHz, used to convert cycles to time.
    pub clock_ghz: f64,
    /// Cycles for one synchronous transition (ecall or ocall) with a
    /// single thread inside the enclave.
    pub sync_transition_cycles: u64,
    /// Extra contention factor per additional thread executing inside
    /// the enclave. Calibrated so 48 threads cost ~20× one thread:
    /// `cost = sync * (1 + alpha * (threads - 1))` with `alpha ≈ 0.404`.
    pub contention_alpha: f64,
    /// Cycles charged when the async slot mechanism hands over one call
    /// (shared-memory write + schedule), replacing a full transition.
    pub async_handoff_cycles: u64,
    /// Usable EPC size in bytes before paging kicks in (~93.5 MB usable
    /// of the 128 MB EPC on the paper's hardware).
    pub epc_limit_bytes: u64,
    /// Cycles charged per 4 KB page swapped between EPC and DRAM.
    pub epc_page_swap_cycles: u64,
    /// Multiplier on in-enclave memory-heavy work, modelling the MEE
    /// en/decryption penalty on last-level-cache misses.
    pub cache_penalty_factor: f64,
    /// Floor on the thread count used for contention pricing. On hosts
    /// with fewer cores than the paper's testbed, genuine in-enclave
    /// parallelism cannot arise, so transitions would always be priced
    /// at the uncontended 8,400 cycles; setting this to the workload's
    /// configured application-thread count charges the cost the
    /// modelled hardware would see (0 = use the live thread count
    /// only).
    pub assumed_concurrency: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            enabled: true,
            clock_ghz: 3.7, // the paper's Xeon E3-1280 v5
            sync_transition_cycles: 8_400,
            contention_alpha: 0.404,
            async_handoff_cycles: 450,
            epc_limit_bytes: 93 * 1024 * 1024,
            epc_page_swap_cycles: 12_000,
            cache_penalty_factor: 1.3,
            assumed_concurrency: 0,
        }
    }
}

impl CostModel {
    /// A model that charges nothing; useful for functional tests.
    pub fn free() -> Self {
        CostModel {
            enabled: false,
            ..CostModel::default()
        }
    }

    /// Cycles for one synchronous transition given `threads` currently
    /// executing inside the enclave.
    #[must_use]
    pub fn transition_cycles(&self, threads: u64) -> u64 {
        let threads = threads.max(self.assumed_concurrency);
        let extra = threads.saturating_sub(1) as f64;
        (self.sync_transition_cycles as f64 * (1.0 + self.contention_alpha * extra)) as u64
    }

    /// Burns CPU for approximately `cycles` cycles of the modelled clock.
    pub fn charge_cycles(&self, cycles: u64) {
        if !self.enabled || cycles == 0 {
            return;
        }
        let nanos = cycles as f64 / self.clock_ghz;
        spin_for_nanos(nanos as u64);
    }

    /// Charges one synchronous enclave transition.
    pub fn charge_transition(&self, threads_inside: u64) {
        self.charge_cycles(self.transition_cycles(threads_inside.max(1)));
    }

    /// Charges one asynchronous slot handoff.
    pub fn charge_async_handoff(&self) {
        self.charge_cycles(self.async_handoff_cycles);
    }
}

/// Calibrated spin iterations per microsecond.
fn spin_iters_per_us() -> u64 {
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Measure how many spin iterations fit in ~2 ms.
        let start = Instant::now();
        let mut iters: u64 = 0;
        let sink = AtomicU64::new(0);
        while start.elapsed().as_micros() < 2_000 {
            for _ in 0..1_000 {
                std::hint::spin_loop();
                sink.fetch_add(1, Ordering::Relaxed);
            }
            iters += 1_000;
        }
        let us = start.elapsed().as_micros().max(1) as u64;
        (iters / us).max(1)
    })
}

/// Busy-spins for approximately `nanos` nanoseconds.
pub fn spin_for_nanos(nanos: u64) {
    if nanos == 0 {
        return;
    }
    // Iteration-based burning (not wall-clock): under thread
    // contention a wall-clock spin would count descheduled time as
    // work done, silently parallelising the modelled cost.
    let iters = spin_iters_per_us() * nanos / 1_000;
    let sink = AtomicU64::new(0);
    for _ in 0..iters.max(1) {
        std::hint::spin_loop();
        sink.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_cycles_scale_with_threads() {
        let m = CostModel::default();
        let one = m.transition_cycles(1);
        let many = m.transition_cycles(48);
        assert_eq!(one, 8_400);
        // Paper: ~20x at 48 threads.
        let ratio = many as f64 / one as f64;
        assert!((18.0..22.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        let start = Instant::now();
        for _ in 0..1000 {
            m.charge_transition(4);
        }
        assert!(start.elapsed().as_millis() < 50);
    }

    #[test]
    fn enabled_model_burns_time() {
        let m = CostModel {
            enabled: true,
            ..CostModel::default()
        };
        let start = Instant::now();
        // 3.7 GHz, 8400 cycles ≈ 2.3 us each; 2000 calls ≈ 4.5 ms.
        for _ in 0..2000 {
            m.charge_transition(1);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_micros() > 1_000,
            "charging was too cheap: {elapsed:?}"
        );
    }

    #[test]
    fn async_handoff_cheaper_than_transition() {
        let m = CostModel::default();
        assert!(m.async_handoff_cycles * 10 < m.sync_transition_cycles);
    }

    #[test]
    fn spin_calibration_is_sane() {
        assert!(spin_iters_per_us() >= 1);
    }
}

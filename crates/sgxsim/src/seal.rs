//! Sealed storage.
//!
//! SGX sealing encrypts enclave data for persistence with a key derived
//! from the platform and either the exact enclave measurement
//! (`MRENCLAVE`) or its signing authority (`MRSIGNER`). The format here
//! is `nonce (12) || ciphertext || tag (16)` using ChaCha20-Poly1305.

use libseal_crypto::aead::ChaCha20Poly1305;

/// Key-derivation policy for sealing (SGX KEYPOLICY analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealingPolicy {
    /// Bind to the exact enclave measurement: only the identical
    /// enclave can unseal.
    MrEnclave,
    /// Bind to the signing authority: any enclave signed by the same
    /// key can unseal (used for upgrades and log sharing, §6.3).
    MrSigner,
}

/// Seals `plaintext` under `key` with additional authenticated data
/// `aad`.
pub fn seal_with_key(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let aead = ChaCha20Poly1305::new(key);
    let mut out = Vec::with_capacity(12 + plaintext.len() + 16);
    out.extend_from_slice(nonce);
    out.extend_from_slice(&aead.seal(nonce, aad, plaintext));
    out
}

/// Unseals a blob produced by [`seal_with_key`]; `None` when the blob
/// is malformed or fails authentication.
pub fn unseal_with_key(key: &[u8; 32], aad: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 12 + 16 {
        return None;
    }
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&sealed[..12]);
    let aead = ChaCha20Poly1305::new(key);
    aead.open(&nonce, aad, &sealed[12..]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = [3u8; 32];
        let sealed = seal_with_key(&key, &[7u8; 12], b"aad", b"hello enclave");
        assert_eq!(
            unseal_with_key(&key, b"aad", &sealed).unwrap(),
            b"hello enclave"
        );
    }

    #[test]
    fn wrong_key_fails() {
        let sealed = seal_with_key(&[3u8; 32], &[7u8; 12], b"", b"data");
        assert!(unseal_with_key(&[4u8; 32], b"", &sealed).is_none());
    }

    #[test]
    fn truncated_fails() {
        let key = [3u8; 32];
        let sealed = seal_with_key(&key, &[7u8; 12], b"", b"data");
        assert!(unseal_with_key(&key, b"", &sealed[..20]).is_none());
        assert!(unseal_with_key(&key, b"", &[]).is_none());
    }

    #[test]
    fn tampered_fails() {
        let key = [3u8; 32];
        let mut sealed = seal_with_key(&key, &[7u8; 12], b"", b"data");
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x01;
        assert!(unseal_with_key(&key, b"", &sealed).is_none());
    }
}

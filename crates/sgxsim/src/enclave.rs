//! Enclave lifecycle, measurement and the ecall/ocall trust boundary.
//!
//! An [`Enclave<T>`] owns trusted state `T` that outside code can only
//! reach through [`Enclave::ecall`], mirroring how the SGX SDK only
//! exposes the functions listed in the EDL file. Enclave code reaches
//! untrusted functionality through [`EnclaveServices::ocall`]. Every
//! synchronous crossing charges the cost model and bumps the transition
//! counters; the asynchronous path (`libseal-lthread`) instead charges a
//! cheap slot handoff via [`Enclave::async_call`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};
use libseal_crypto::rng::ChaChaRng;
use libseal_crypto::sha2::Sha256;
use plat::sync::Mutex;

use crate::cost::CostModel;
use crate::epc::EpcState;
use crate::seal::{self, SealingPolicy};
use crate::stats::TransitionStats;
use crate::{Result, SgxError};

/// Identifies an interface function for accounting purposes.
pub type CallId = &'static str;

/// Facilities available to code running inside the enclave.
pub struct EnclaveServices {
    model: CostModel,
    stats: Arc<TransitionStats>,
    epc: EpcState,
    threads_inside: AtomicU64,
    tcs_count: u64,
    platform_secret: [u8; 32],
    measurement: [u8; 32],
    signer: VerifyingKey,
    rng: Mutex<ChaChaRng>,
}

impl EnclaveServices {
    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The transition statistics collector.
    pub fn stats(&self) -> &TransitionStats {
        &self.stats
    }

    /// A shareable handle to the statistics collector (for callback
    /// trampolines that outlive the current call frame).
    pub fn stats_arc(&self) -> Arc<TransitionStats> {
        Arc::clone(&self.stats)
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> &[u8; 32] {
        &self.measurement
    }

    /// The enclave's signing authority (MRSIGNER analogue).
    pub fn signer(&self) -> &VerifyingKey {
        &self.signer
    }

    /// Number of threads currently executing inside the enclave.
    pub fn threads_inside(&self) -> u64 {
        self.threads_inside.load(Ordering::Relaxed)
    }

    /// Executes an untrusted function outside the enclave (a synchronous
    /// ocall): charges a full transition at the current contention
    /// level.
    pub fn ocall<R>(&self, name: CallId, f: impl FnOnce() -> R) -> R {
        let threads = self.threads_inside().max(1);
        let cycles = self.model.transition_cycles(threads);
        self.model.charge_cycles(cycles);
        self.stats.record_ocall(name, cycles);
        f()
    }

    /// In-enclave randomness (avoids an ocall to the host RNG, §4.2
    /// optimisation 2).
    pub fn fill_random(&self, out: &mut [u8]) {
        self.rng.lock().fill(out);
    }

    /// Registers an in-enclave heap allocation with the EPC model.
    pub fn epc_alloc(&self, bytes: u64) {
        self.epc.alloc(bytes, &self.model, &self.stats);
    }

    /// Releases enclave heap from the EPC model.
    pub fn epc_free(&self, bytes: u64) {
        self.epc.free(bytes);
    }

    /// Charges the access cost for touching enclave memory.
    pub fn epc_touch(&self, bytes: u64) {
        self.epc.touch(bytes, &self.model, &self.stats);
    }

    /// Bytes currently resident in the simulated EPC.
    pub fn epc_resident(&self) -> u64 {
        self.epc.resident()
    }

    /// Seals `plaintext` to this enclave's identity per `policy`.
    pub fn seal_data(&self, policy: SealingPolicy, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let key = self.seal_key(policy);
        let mut nonce = [0u8; 12];
        self.fill_random(&mut nonce);
        seal::seal_with_key(&key, &nonce, aad, plaintext)
    }

    /// Unseals a blob previously produced by [`Self::seal_data`].
    ///
    /// # Errors
    ///
    /// [`SgxError::SealingFailure`] if the blob was tampered with or was
    /// sealed by a different identity.
    pub fn unseal_data(&self, policy: SealingPolicy, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        let key = self.seal_key(policy);
        seal::unseal_with_key(&key, aad, sealed).ok_or(SgxError::SealingFailure)
    }

    /// Derives the sealing key for `policy` (KEYREQUEST analogue).
    pub fn seal_key(&self, policy: SealingPolicy) -> [u8; 32] {
        let binding: &[u8] = match policy {
            SealingPolicy::MrEnclave => &self.measurement,
            SealingPolicy::MrSigner => self.signer.as_bytes(),
        };
        let mut key = [0u8; 32];
        let prk = libseal_crypto::hkdf::extract(&self.platform_secret, binding);
        libseal_crypto::hkdf::expand(&prk, b"sgxsim-seal-key", &mut key);
        key
    }

    /// Validates an interface parameter, aborting the call on failure.
    ///
    /// # Errors
    ///
    /// [`SgxError::InterfaceViolation`] when `ok` is false; callers are
    /// expected to propagate this, terminating the ecall (the paper's
    /// LibSEAL aborts on failed interface checks, §6.3).
    pub fn interface_check(&self, ok: bool, what: &str) -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(SgxError::InterfaceViolation(what.to_string()))
        }
    }

    fn enter(&self) -> Result<u64> {
        // Claim a TCS slot, spinning briefly if all are busy (the SGX
        // SDK blocks the calling thread in this situation).
        let mut spins = 0u64;
        loop {
            let cur = self.threads_inside.load(Ordering::Acquire);
            if cur < self.tcs_count {
                if self
                    .threads_inside
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Ok(cur + 1);
                }
                continue;
            }
            spins += 1;
            if spins > 10_000_000 {
                return Err(SgxError::OutOfTcs);
            }
            std::thread::yield_now();
        }
    }

    fn exit(&self) {
        self.threads_inside.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Builder for [`Enclave`].
pub struct EnclaveBuilder {
    identity: Vec<u8>,
    interface: Vec<CallId>,
    model: CostModel,
    tcs_count: u64,
    platform_secret: Option<[u8; 32]>,
    signer: Option<SigningKey>,
}

impl EnclaveBuilder {
    /// Starts building an enclave whose code identity is `identity`
    /// (e.g. a library name and version; hashed into the measurement).
    pub fn new(identity: &[u8]) -> Self {
        EnclaveBuilder {
            identity: identity.to_vec(),
            interface: Vec::new(),
            model: CostModel::default(),
            tcs_count: 16,
            platform_secret: None,
            signer: None,
        }
    }

    /// Declares an interface function (EDL entry); part of the
    /// measurement.
    pub fn declare_interface(mut self, name: CallId) -> Self {
        self.interface.push(name);
        self
    }

    /// Sets the cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the number of TCS slots (maximum concurrent enclave
    /// threads; static in SGX1, see §4.3 footnote).
    pub fn tcs_count(mut self, n: u64) -> Self {
        self.tcs_count = n.max(1);
        self
    }

    /// Overrides the per-platform sealing secret (defaults to a
    /// process-wide random secret; override to simulate migrating
    /// sealed data across machines).
    pub fn platform_secret(mut self, secret: [u8; 32]) -> Self {
        self.platform_secret = Some(secret);
        self
    }

    /// Sets the signing authority of the enclave.
    pub fn signer(mut self, key: SigningKey) -> Self {
        self.signer = Some(key);
        self
    }

    /// Initialises the enclave with trusted state built by `init`,
    /// which runs inside the freshly measured enclave.
    pub fn build<T>(self, init: impl FnOnce(&EnclaveServices) -> T) -> Enclave<T> {
        let mut m = Sha256::new();
        m.update(&self.identity);
        let mut names = self.interface.clone();
        names.sort_unstable();
        for n in &names {
            m.update(n.as_bytes());
            m.update(&[0]);
        }
        let signer = self
            .signer
            .unwrap_or_else(|| SigningKey::from_seed(&[0x5a; 32]));
        let mut mfinal = m.clone();
        mfinal.update(signer.verifying_key().as_bytes());
        let measurement = mfinal.finalize();

        let mut seed = [0u8; 32];
        seed.copy_from_slice(&Sha256::digest(&measurement));
        let services = EnclaveServices {
            model: self.model,
            stats: Arc::new(TransitionStats::new()),
            epc: EpcState::new(),
            threads_inside: AtomicU64::new(0),
            tcs_count: self.tcs_count,
            platform_secret: self.platform_secret.unwrap_or_else(process_platform_secret),
            measurement,
            signer: signer.verifying_key(),
            rng: Mutex::new(ChaChaRng::from_seed(seed_mix(seed))),
        };
        let state = init(&services);
        Enclave {
            services: Arc::new(services),
            state,
        }
    }
}

fn seed_mix(mut seed: [u8; 32]) -> [u8; 32] {
    // Mix in process entropy so two enclaves with equal measurement do
    // not share an RNG stream.
    let mut noise = [0u8; 32];
    plat::entropy::fill(&mut noise);
    for (s, n) in seed.iter_mut().zip(noise.iter()) {
        *s ^= n;
    }
    seed
}

fn process_platform_secret() -> [u8; 32] {
    use std::sync::OnceLock;
    static SECRET: OnceLock<[u8; 32]> = OnceLock::new();
    *SECRET.get_or_init(plat::entropy::seed32)
}

/// A simulated SGX enclave holding trusted state `T`.
///
/// `T` is responsible for its own interior synchronisation (as enclave
/// code is in real SGX); the enclave only polices the boundary.
pub struct Enclave<T> {
    services: Arc<EnclaveServices>,
    state: T,
}

impl<T> Enclave<T> {
    /// Executes `f` inside the enclave as a synchronous ecall: claims a
    /// TCS slot, charges a transition at the current contention level,
    /// and records the call.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfTcs`] when no TCS slot frees up.
    pub fn ecall<R>(&self, name: CallId, f: impl FnOnce(&T, &EnclaveServices) -> R) -> Result<R> {
        let threads = self.services.enter()?;
        let cycles = self.services.model.transition_cycles(threads);
        self.services.model.charge_cycles(cycles);
        self.services.stats.record_ecall(name, cycles);
        let r = f(&self.state, &self.services);
        self.services.exit();
        Ok(r)
    }

    /// Executes `f` inside the enclave as a *batched* ecall serving
    /// `items` units of work (sessions, log entries, …) in one
    /// transition — the `seal_batch`/`verify_batch` shape, exposed as
    /// a first-class entry point for the event-driven service core.
    /// One transition is charged regardless of `items`; the batch is
    /// priced in telemetry (`sgxsim_batch_ecalls_total` /
    /// `sgxsim_batch_items_total`) so gates can measure amortisation.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfTcs`] when no TCS slot frees up.
    pub fn ecall_batch<R>(
        &self,
        name: CallId,
        items: u64,
        f: impl FnOnce(&T, &EnclaveServices) -> R,
    ) -> Result<R> {
        let threads = self.services.enter()?;
        let cycles = self.services.model.transition_cycles(threads);
        self.services.model.charge_cycles(cycles);
        self.services.stats.record_batch_ecall(name, cycles, items);
        let r = f(&self.state, &self.services);
        self.services.exit();
        Ok(r)
    }

    /// Executes `f` inside the enclave on behalf of an asynchronous
    /// call slot: the calling thread must already be a persistent
    /// enclave thread (see [`Enclave::enter_persistent`]), so only the
    /// cheap handoff cost is charged.
    pub fn async_call<R>(&self, f: impl FnOnce(&T, &EnclaveServices) -> R) -> R {
        self.services.model.charge_async_handoff();
        self.services
            .stats
            .record_async_ecall(self.services.model.async_handoff_cycles);
        f(&self.state, &self.services)
    }

    /// Marks the current thread as permanently resident inside the
    /// enclave (an SGX thread of §4.3). Returns a guard; while alive it
    /// occupies a TCS slot.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfTcs`] when all slots are taken.
    pub fn enter_persistent(&self) -> Result<PersistentEntry<'_, T>> {
        self.services.enter()?;
        Ok(PersistentEntry { enclave: self })
    }

    /// The enclave services handle (measurement, sealing, stats).
    pub fn services(&self) -> &Arc<EnclaveServices> {
        &self.services
    }

    /// The enclave measurement.
    pub fn measurement(&self) -> &[u8; 32] {
        self.services.measurement()
    }
}

/// Guard representing a thread resident inside the enclave.
pub struct PersistentEntry<'e, T> {
    enclave: &'e Enclave<T>,
}

impl<T> PersistentEntry<'_, T> {
    /// Runs `f` with access to the trusted state, without a transition
    /// (the thread is already inside).
    pub fn with<R>(&self, f: impl FnOnce(&T, &EnclaveServices) -> R) -> R {
        f(&self.enclave.state, &self.enclave.services)
    }
}

impl<T> Drop for PersistentEntry<'_, T> {
    fn drop(&mut self) {
        self.enclave.services.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_enclave() -> Enclave<Mutex<u64>> {
        EnclaveBuilder::new(b"test-enclave-v1")
            .declare_interface("bump")
            .cost_model(CostModel::free())
            .build(|_| Mutex::new(0u64))
    }

    #[test]
    fn ecall_reaches_state() {
        let e = test_enclave();
        e.ecall("bump", |s, _| *s.lock() += 5).unwrap();
        let v = e.ecall("bump", |s, _| *s.lock()).unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn transitions_are_counted() {
        let e = test_enclave();
        e.ecall("bump", |_, sv| {
            sv.ocall("malloc", || ());
            sv.ocall("malloc", || ());
        })
        .unwrap();
        let snap = e.services().stats().snapshot();
        assert_eq!(snap.ecalls, 1);
        assert_eq!(snap.ocalls, 2);
        assert_eq!(snap.by_name["malloc"], 2);
    }

    #[test]
    fn batch_ecall_charges_one_transition_for_many_items() {
        let e = test_enclave();
        e.ecall_batch("tls_batch", 64, |s, _| *s.lock() += 64)
            .unwrap();
        let snap = e.services().stats().snapshot();
        assert_eq!(snap.ecalls, 1, "one transition");
        assert_eq!(snap.batch_ecalls, 1);
        assert_eq!(snap.batch_items, 64);
        assert_eq!(snap.by_name["tls_batch"], 1);
        assert_eq!(e.ecall("bump", |s, _| *s.lock()).unwrap(), 64);
    }

    #[test]
    fn async_call_counts_separately() {
        let e = test_enclave();
        let _entry = e.enter_persistent().unwrap();
        e.async_call(|s, _| *s.lock() += 1);
        let snap = e.services().stats().snapshot();
        assert_eq!(snap.ecalls, 0);
        assert_eq!(snap.async_ecalls, 1);
    }

    #[test]
    fn tcs_limit_enforced() {
        let e = EnclaveBuilder::new(b"small")
            .cost_model(CostModel::free())
            .tcs_count(1)
            .build(|_| ());
        let first = e.enter_persistent().unwrap();
        assert_eq!(e.services().threads_inside(), 1);
        drop(first);
        assert_eq!(e.services().threads_inside(), 0);
        let _again = e.enter_persistent().unwrap();
    }

    #[test]
    fn measurement_depends_on_identity_and_interface() {
        let a = EnclaveBuilder::new(b"x")
            .declare_interface("f")
            .cost_model(CostModel::free())
            .build(|_| ());
        let b = EnclaveBuilder::new(b"x")
            .declare_interface("g")
            .cost_model(CostModel::free())
            .build(|_| ());
        let c = EnclaveBuilder::new(b"y")
            .declare_interface("f")
            .cost_model(CostModel::free())
            .build(|_| ());
        assert_ne!(a.measurement(), b.measurement());
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let e = test_enclave();
        e.ecall("bump", |_, sv| {
            let sealed = sv.seal_data(SealingPolicy::MrSigner, b"log", b"secret payload");
            assert_ne!(&sealed[..], b"secret payload");
            let opened = sv
                .unseal_data(SealingPolicy::MrSigner, b"log", &sealed)
                .unwrap();
            assert_eq!(opened, b"secret payload");
            // Wrong AAD must fail.
            assert!(sv
                .unseal_data(SealingPolicy::MrSigner, b"oth", &sealed)
                .is_err());
        })
        .unwrap();
    }

    #[test]
    fn same_signer_can_unseal_across_enclaves() {
        let signer = SigningKey::from_seed(&[1u8; 32]);
        let secret = [9u8; 32];
        let e1 = EnclaveBuilder::new(b"v1")
            .cost_model(CostModel::free())
            .signer(signer.clone())
            .platform_secret(secret)
            .build(|_| ());
        let e2 = EnclaveBuilder::new(b"v2-upgraded")
            .cost_model(CostModel::free())
            .signer(signer)
            .platform_secret(secret)
            .build(|_| ());
        let sealed = e1
            .ecall("seal", |_, sv| {
                sv.seal_data(SealingPolicy::MrSigner, b"", b"data")
            })
            .unwrap();
        let opened = e2
            .ecall("unseal", |_, sv| {
                sv.unseal_data(SealingPolicy::MrSigner, b"", &sealed)
            })
            .unwrap()
            .unwrap();
        assert_eq!(opened, b"data");
        // MRENCLAVE policy must NOT transfer between different code.
        let sealed_mr = e1
            .ecall("seal", |_, sv| {
                sv.seal_data(SealingPolicy::MrEnclave, b"", b"data")
            })
            .unwrap();
        let res = e2
            .ecall("unseal", |_, sv| {
                sv.unseal_data(SealingPolicy::MrEnclave, b"", &sealed_mr)
            })
            .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn interface_check_aborts() {
        let e = test_enclave();
        let r = e
            .ecall("bump", |_, sv| -> crate::Result<()> {
                sv.interface_check(false, "pointer outside untrusted range")?;
                Ok(())
            })
            .unwrap();
        assert!(matches!(r, Err(SgxError::InterfaceViolation(_))));
    }

    #[test]
    fn in_enclave_rng_is_random() {
        let e = test_enclave();
        let (a, b) = e
            .ecall("bump", |_, sv| {
                let mut a = [0u8; 16];
                let mut b = [0u8; 16];
                sv.fill_random(&mut a);
                sv.fill_random(&mut b);
                (a, b)
            })
            .unwrap();
        assert_ne!(a, b);
    }
}

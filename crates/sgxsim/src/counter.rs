//! SGX hardware monotonic counters.
//!
//! The paper (§5.1, citing ROTE) notes that SGX counters "have
//! poor performance and limited lifespans": increments take on the
//! order of 100 ms and the backing NVRAM wears out after on the order
//! of a million writes. This module reproduces both properties so the
//! benchmarks show why LibSEAL uses the distributed ROTE protocol
//! (`libseal-rote`) instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use libseal_telemetry::Histogram;

use crate::{Result, SgxError};

/// Latency of simulated HW counter increments, across all counters.
fn increment_latency_hist() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| libseal_telemetry::histogram("sgxsim_counter_increment_ns"))
}

/// A simulated SGX hardware monotonic counter.
pub struct MonotonicCounter {
    value: AtomicU64,
    writes: AtomicU64,
    max_writes: u64,
    increment_latency: Duration,
}

impl MonotonicCounter {
    /// The paper-era increment latency of SGX counters (~80-250 ms;
    /// we use 100 ms).
    pub const HW_LATENCY: Duration = Duration::from_millis(100);
    /// Write-endurance budget before the counter wears out.
    pub const HW_MAX_WRITES: u64 = 1_000_000;

    /// Creates a counter with hardware-realistic latency and wear.
    pub fn hardware_realistic() -> Self {
        Self::with_properties(Self::HW_LATENCY, Self::HW_MAX_WRITES)
    }

    /// Creates a counter with custom latency and endurance (tests and
    /// fast benchmarks pass `Duration::ZERO`).
    pub fn with_properties(increment_latency: Duration, max_writes: u64) -> Self {
        MonotonicCounter {
            value: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            max_writes,
            increment_latency,
        }
    }

    /// Reads the current value (fast).
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Increments and returns the new value; pays the NVRAM write
    /// latency and consumes endurance.
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterFailure`] once the endurance budget is
    /// exhausted.
    pub fn increment(&self) -> Result<u64> {
        let start = std::time::Instant::now();
        let writes = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if writes > self.max_writes {
            return Err(SgxError::CounterFailure(format!(
                "counter worn out after {} writes",
                self.max_writes
            )));
        }
        if !self.increment_latency.is_zero() {
            std::thread::sleep(self.increment_latency);
        }
        let value = self.value.fetch_add(1, Ordering::SeqCst) + 1;
        increment_latency_hist().record_duration(start.elapsed());
        Ok(value)
    }

    /// Number of writes performed so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_monotonically() {
        let c = MonotonicCounter::with_properties(Duration::ZERO, 100);
        assert_eq!(c.read(), 0);
        assert_eq!(c.increment().unwrap(), 1);
        assert_eq!(c.increment().unwrap(), 2);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn wears_out() {
        let c = MonotonicCounter::with_properties(Duration::ZERO, 3);
        for _ in 0..3 {
            c.increment().unwrap();
        }
        assert!(matches!(c.increment(), Err(SgxError::CounterFailure(_))));
    }

    #[test]
    fn latency_is_paid() {
        let c = MonotonicCounter::with_properties(Duration::from_millis(5), 10);
        let start = std::time::Instant::now();
        c.increment().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}

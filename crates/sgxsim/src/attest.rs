//! Remote attestation: quotes and their verification.
//!
//! On real SGX, a dedicated quoting enclave signs enclave measurements
//! with a CPU-fused key, and Intel's attestation service vouches for
//! the signature (§2.5). Here the [`QuotingEnclave`] holds an Ed25519
//! key whose public half plays the role of the Intel root of trust;
//! [`AttestationService`] is the verifier clients embed.
//!
//! LibSEAL uses attestation to provision the TLS certificate private
//! key into a *genuine* LibSEAL enclave only, preventing the provider
//! from terminating TLS with a vanilla library and bypassing the audit
//! log (§6.3).

use libseal_crypto::ed25519::{SigningKey, VerifyingKey};

use crate::enclave::EnclaveServices;
use crate::{Result, SgxError};

/// A signed statement that an enclave with the embedded measurement and
/// signer is running on a genuine platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// MRENCLAVE of the quoted enclave.
    pub measurement: [u8; 32],
    /// MRSIGNER (compressed public key) of the quoted enclave.
    pub signer: [u8; 32],
    /// Caller-chosen data bound into the quote (e.g. a TLS key hash).
    pub report_data: [u8; 64],
    /// When the quote was produced (unix milliseconds), signed along
    /// with the identity so verifiers can enforce a freshness TTL.
    pub issued_at_ms: u64,
    /// Signature by the quoting enclave.
    pub signature: [u8; 64],
}

impl Quote {
    fn signed_payload(
        measurement: &[u8; 32],
        signer: &[u8; 32],
        report: &[u8; 64],
        issued_at_ms: u64,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + 32 + 64 + 8 + 16);
        buf.extend_from_slice(b"sgxsim-quote-v2:");
        buf.extend_from_slice(measurement);
        buf.extend_from_slice(signer);
        buf.extend_from_slice(report);
        buf.extend_from_slice(&issued_at_ms.to_le_bytes());
        buf
    }
}

/// The platform's quoting enclave.
pub struct QuotingEnclave {
    key: SigningKey,
}

impl QuotingEnclave {
    /// Creates a quoting enclave with the given provisioning seed
    /// ("fused" at manufacture).
    pub fn new(seed: &[u8; 32]) -> Self {
        QuotingEnclave {
            key: SigningKey::from_seed(seed),
        }
    }

    /// The root-of-trust verification key to distribute to clients.
    pub fn root_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Produces a quote over a local enclave's identity and
    /// caller-chosen `report_data`, stamped with the current time.
    pub fn quote(&self, services: &EnclaveServices, report_data: &[u8; 64]) -> Quote {
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.quote_at(services, report_data, now_ms)
    }

    /// Produces a quote with an explicit issuance timestamp (unix
    /// milliseconds) — the hook freshness/staleness tests use to mint
    /// old quotes deterministically.
    pub fn quote_at(
        &self,
        services: &EnclaveServices,
        report_data: &[u8; 64],
        issued_at_ms: u64,
    ) -> Quote {
        let measurement = *services.measurement();
        let signer = *services.signer().as_bytes();
        let payload = Quote::signed_payload(&measurement, &signer, report_data, issued_at_ms);
        Quote {
            measurement,
            signer,
            report_data: *report_data,
            issued_at_ms,
            signature: self.key.sign(&payload),
        }
    }
}

/// Client-side verifier of quotes (the IAS analogue).
pub struct AttestationService {
    root: VerifyingKey,
}

impl AttestationService {
    /// Creates a verifier trusting `root` (the quoting enclave's key).
    pub fn new(root: VerifyingKey) -> Self {
        AttestationService { root }
    }

    /// Verifies a quote's signature and, when `expected_measurement`
    /// is provided, that it names that exact enclave.
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailure`] on any mismatch.
    pub fn verify(&self, quote: &Quote, expected_measurement: Option<&[u8; 32]>) -> Result<()> {
        let payload = Quote::signed_payload(
            &quote.measurement,
            &quote.signer,
            &quote.report_data,
            quote.issued_at_ms,
        );
        self.root
            .verify(&payload, &quote.signature)
            .map_err(|_| SgxError::AttestationFailure)?;
        if let Some(m) = expected_measurement {
            if m != &quote.measurement {
                return Err(SgxError::AttestationFailure);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::enclave::EnclaveBuilder;

    #[test]
    fn quote_verifies() {
        let e = EnclaveBuilder::new(b"libseal")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let ias = AttestationService::new(qe.root_key());
        let report = [0x42u8; 64];
        let quote = qe.quote(e.services(), &report);
        ias.verify(&quote, Some(e.measurement())).unwrap();
        ias.verify(&quote, None).unwrap();
    }

    #[test]
    fn forged_quote_rejected() {
        let e = EnclaveBuilder::new(b"libseal")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let rogue = QuotingEnclave::new(&[0x22; 32]);
        let ias = AttestationService::new(qe.root_key());
        let quote = rogue.quote(e.services(), &[0u8; 64]);
        assert_eq!(ias.verify(&quote, None), Err(SgxError::AttestationFailure));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let e = EnclaveBuilder::new(b"libseal")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let ias = AttestationService::new(qe.root_key());
        let mut quote = qe.quote(e.services(), &[0u8; 64]);
        quote.measurement[0] ^= 1;
        assert!(ias.verify(&quote, None).is_err());
    }

    #[test]
    fn wrong_expected_measurement_rejected() {
        let e = EnclaveBuilder::new(b"real")
            .cost_model(CostModel::free())
            .build(|_| ());
        let other = EnclaveBuilder::new(b"other")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let ias = AttestationService::new(qe.root_key());
        let quote = qe.quote(e.services(), &[0u8; 64]);
        assert!(ias.verify(&quote, Some(other.measurement())).is_err());
    }

    #[test]
    fn timestamp_is_bound() {
        let e = EnclaveBuilder::new(b"libseal")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let ias = AttestationService::new(qe.root_key());
        let mut quote = qe.quote_at(e.services(), &[7u8; 64], 1_000);
        ias.verify(&quote, None).unwrap();
        // Re-dating a signed quote must break the signature.
        quote.issued_at_ms = 2_000;
        assert!(ias.verify(&quote, None).is_err());
    }

    #[test]
    fn report_data_is_bound() {
        let e = EnclaveBuilder::new(b"libseal")
            .cost_model(CostModel::free())
            .build(|_| ());
        let qe = QuotingEnclave::new(&[0x11; 32]);
        let ias = AttestationService::new(qe.root_key());
        let mut quote = qe.quote(e.services(), &[7u8; 64]);
        quote.report_data[0] = 8;
        assert!(ias.verify(&quote, None).is_err());
    }
}

//! The preallocated untrusted memory pool (§4.2 optimisation 1).
//!
//! Enclave code that needs small, non-sensitive buffers outside the
//! enclave (e.g. LibSEAL's BIO objects) would normally `malloc` them
//! via an ocall — a full transition each way. LibSEAL preallocates a
//! pool outside the enclave and hands out blocks with cheap
//! enclave-internal bookkeeping instead. The §4.2 experiment toggles
//! this pool; [`MemoryPool::alloc`] and the fallback path make both
//! configurations measurable.

use plat::sync::Mutex;
use std::sync::Arc;

use crate::enclave::EnclaveServices;

/// A fixed-size-block pool living in untrusted memory.
pub struct MemoryPool {
    block_size: usize,
    free: Mutex<Vec<Box<[u8]>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    enabled: bool,
}

/// A block handed out by the pool; returns itself on drop.
pub struct PoolBlock {
    data: Option<Box<[u8]>>,
    pool: Arc<MemoryPool>,
}

impl PoolBlock {
    /// The block's bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.data.as_mut().expect("block present until drop")
    }

    /// The block's bytes (shared).
    pub fn as_slice(&self) -> &[u8] {
        self.data.as_ref().expect("block present until drop")
    }
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            if self.pool.enabled {
                self.pool.free.lock().push(data);
            }
            // When the pool is disabled the block is simply dropped;
            // the ocall for `free` was already charged by `dealloc_cost`.
        }
    }
}

impl MemoryPool {
    /// Creates a pool of `count` blocks of `block_size` bytes each.
    pub fn new(block_size: usize, count: usize) -> Arc<Self> {
        let free = (0..count)
            .map(|_| vec![0u8; block_size].into_boxed_slice())
            .collect();
        Arc::new(MemoryPool {
            block_size,
            free: Mutex::new(free),
            hits: Default::default(),
            misses: Default::default(),
            enabled: true,
        })
    }

    /// Creates a disabled pool: every allocation takes the ocall path,
    /// reproducing the paper's "no optimisation" configuration.
    pub fn disabled(block_size: usize) -> Arc<Self> {
        Arc::new(MemoryPool {
            block_size,
            free: Mutex::new(Vec::new()),
            hits: Default::default(),
            misses: Default::default(),
            enabled: false,
        })
    }

    /// Allocates one block. With the pool enabled this is a cheap
    /// enclave-internal operation; otherwise it charges an ocall to
    /// `malloc` through `services`.
    pub fn alloc(self: &Arc<Self>, services: &EnclaveServices) -> PoolBlock {
        if self.enabled {
            if let Some(block) = self.free.lock().pop() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return PoolBlock {
                    data: Some(block),
                    pool: Arc::clone(self),
                };
            }
        }
        // Pool exhausted or disabled: fall back to untrusted malloc
        // (one ocall now, one for free later).
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let data = services.ocall("malloc", || vec![0u8; self.block_size].into_boxed_slice());
        services.ocall("free_later", || ()); // The paired free transition.
        PoolBlock {
            data: Some(data),
            pool: Arc::clone(self),
        }
    }

    /// Pool hits (cheap allocations) so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Pool misses (ocall allocations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::enclave::EnclaveBuilder;

    #[test]
    fn pool_avoids_ocalls() {
        let e = EnclaveBuilder::new(b"t")
            .cost_model(CostModel::free())
            .build(|_| ());
        let pool = MemoryPool::new(64, 4);
        e.ecall("use_pool", |_, sv| {
            let a = pool.alloc(sv);
            let b = pool.alloc(sv);
            drop(a);
            drop(b);
        })
        .unwrap();
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 0);
        assert_eq!(e.services().stats().snapshot().ocalls, 0);
    }

    #[test]
    fn disabled_pool_pays_ocalls() {
        let e = EnclaveBuilder::new(b"t")
            .cost_model(CostModel::free())
            .build(|_| ());
        let pool = MemoryPool::disabled(64);
        e.ecall("use_pool", |_, sv| {
            let _a = pool.alloc(sv);
        })
        .unwrap();
        assert_eq!(pool.misses(), 1);
        assert!(e.services().stats().snapshot().ocalls >= 2);
    }

    #[test]
    fn blocks_recycle() {
        let e = EnclaveBuilder::new(b"t")
            .cost_model(CostModel::free())
            .build(|_| ());
        let pool = MemoryPool::new(16, 1);
        e.ecall("recycle", |_, sv| {
            for _ in 0..10 {
                let mut b = pool.alloc(sv);
                b.as_mut_slice()[0] = 7;
            }
        })
        .unwrap();
        assert_eq!(pool.hits(), 10);
        assert_eq!(pool.misses(), 0);
    }

    #[test]
    fn exhausted_pool_falls_back() {
        let e = EnclaveBuilder::new(b"t")
            .cost_model(CostModel::free())
            .build(|_| ());
        let pool = MemoryPool::new(16, 1);
        e.ecall("exhaust", |_, sv| {
            let _a = pool.alloc(sv);
            let _b = pool.alloc(sv); // Falls back to the ocall path.
        })
        .unwrap();
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }
}
